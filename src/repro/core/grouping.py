"""ONEX similarity groups (§3.1) and the per-length online clustering.

A :class:`SimilarityGroup` collects same-length subsequences that are
mutually similar under the cheap length-normalised L1 distance ``ED_n``
and summarises them by their centroid ("representative").  Construction
follows the paper: scan subsequences in order, assign each to the nearest
existing group whose centroid is within ``ST/2``, else seed a new group.

Because the centroid moves as members join, the strict invariant *every
member within ``ST/2`` of the final representative* is re-established by a
finalize/repair pass (:func:`cluster_subsequence_rows` → the repair
rounds): members that drifted outside the radius are pulled out and
re-clustered, with singleton groups as the guaranteed-terminating
fallback.  After repair the triangle inequality of ``ED_n`` gives the
paper's pairwise guarantee: any two members of one group are within
``ST`` of each other.  Both properties are asserted by the test suite on
randomised inputs.

The clustering core works on *row indices* into the stacked window
matrix (:func:`cluster_subsequence_rows`); resolving rows to
:class:`SubsequenceRef` handles is the caller's concern.  This is what
makes the per-length build jobs picklable — a worker process ships group
arrays plus member-row index arrays back to the parent, never handle
objects (:mod:`repro.core.base`).

Two execution strategies produce **bit-identical** groups:

- ``batched=True`` (default) — block joins are applied with one ordered
  ``np.add.at`` scatter per block (sequential accumulation in block
  order, so centroid drift is reproduced exactly), and each repair round
  evaluates every draft's member→centroid deviations in a single flat
  masked operation with ``reduceat`` segment maxima.
- ``batched=False`` — the original row-at-a-time joins and per-draft
  repair loop, retained for ablation benchmarks and the result-identity
  cross-checks (Hypothesis property tests assert both paths return the
  same groups).

Each finalized group also records two radii the query processor needs:

- ``ed_radius`` — max ``ED_n(member, representative)`` (``<= ST/2``),
- ``cheb_radius`` — max ``max_j |member_j - rep_j|``, which feeds the
  transfer-inequality group pruning (:mod:`repro.distances.bounds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.exceptions import InvariantError, ValidationError

__all__ = ["RowGroup", "SimilarityGroup", "cluster_subsequence_rows", "cluster_subsequences"]

#: Tolerance added to radius checks to absorb float round-off.
_EPS = 1e-9


@dataclass
class SimilarityGroup:
    """A finalized ONEX similarity group of same-length subsequences."""

    length: int
    centroid: np.ndarray
    members: tuple[SubsequenceRef, ...]
    ed_radius: float
    cheb_radius: float

    @property
    def cardinality(self) -> int:
        return len(self.members)

    def validate(self, dataset: TimeSeriesDataset, group_radius: float) -> None:
        """Assert the construction invariants against *dataset*.

        Raises :class:`InvariantError` when any member sits farther than
        ``group_radius`` (= ``ST/2``) from the representative or when the
        recorded radii understate reality.  Used by tests and debug paths;
        O(members * length).
        """
        for ref in self.members:
            # Multivariate members resolve to (length, channels) blocks;
            # the stored centroid is the channel-flattened row.
            values = dataset.values(ref).ravel()
            ed = float(np.abs(values - self.centroid).mean())
            cheb = float(np.abs(values - self.centroid).max())
            if ed > group_radius + _EPS:
                raise InvariantError(
                    f"member {ref} at ED_n {ed:.6g} exceeds group radius "
                    f"{group_radius:.6g}"
                )
            if ed > self.ed_radius + _EPS or cheb > self.cheb_radius + _EPS:
                raise InvariantError(
                    f"member {ref} outside recorded radii (ed={ed:.6g}, "
                    f"cheb={cheb:.6g})"
                )


class RowGroup(NamedTuple):
    """One finalized group, expressed in window-matrix rows.

    ``rows`` are indices into the clustered matrix, in member order; the
    arrays are plain numpy/float payloads, so a list of :class:`RowGroup`
    pickles cheaply across the build pipeline's process boundary.
    """

    centroid: np.ndarray
    rows: np.ndarray
    ed_radius: float
    cheb_radius: float


class _DraftGroup:
    """Mutable group used during the online scan, before finalisation."""

    __slots__ = ("row_indices", "total", "count")

    def __init__(self, length: int) -> None:
        self.row_indices: list[int] = []
        self.total = np.zeros(length, dtype=np.float64)
        self.count = 0

    def add(self, row_index: int, values: np.ndarray) -> None:
        self.row_indices.append(row_index)
        self.total += values
        self.count += 1

    @property
    def centroid(self) -> np.ndarray:
        return self.total / self.count


class _CentroidTable:
    """Growable matrix of current centroids for vectorised assignment."""

    def __init__(self, length: int) -> None:
        self._length = length
        self._capacity = 16
        self._matrix = np.empty((self._capacity, length), dtype=np.float64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def matrix(self) -> np.ndarray:
        """The live centroid rows (view; do not mutate)."""
        return self._matrix[: self._count]

    def append(self, centroid: np.ndarray) -> None:
        if self._count == self._capacity:
            self._capacity *= 2
            grown = np.empty((self._capacity, self._length), dtype=np.float64)
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = centroid
        self._count += 1

    def update(self, index: int, centroid: np.ndarray) -> None:
        self._matrix[index] = centroid

    def nearest(self, row: np.ndarray) -> tuple[int, float]:
        """(index, ED_n) of the closest current centroid to *row*."""
        if self._count == 0:
            return -1, np.inf
        dists = np.abs(self._matrix[: self._count] - row).mean(axis=1)
        idx = int(np.argmin(dists))
        return idx, float(dists[idx])


#: Rows per assignment block in the online scan.  Per block, the distance
#: of every row to every existing centroid is evaluated in one vectorised
#: operation instead of one ``nearest`` call per row.
_ASSIGN_BLOCK = 128

#: Centroid columns per chunk of the block distance evaluation; bounds the
#: 3-D temporary at block × chunk × length so it stays cache-resident
#: instead of streaming a block × table × length array through memory.
_CHUNK_COLS = 128


#: Slack added to the mean-difference prescreen so float round-off can
#: never prune a centroid whose exact ``ED_n`` ties the minimum.  The
#: bound ``ED_n(x, c) >= |mean(x) - mean(c)|`` holds exactly in real
#: arithmetic; evaluated in float64 both sides carry ``O(L * eps)``
#: relative error, so a ``1e-9 * (1 + scale)`` margin (twenty-some
#: orders above the error for any realistic window length) keeps the
#: prescreen strictly conservative while still discarding almost every
#: far centroid.
_LB_MARGIN = 1e-9


def _block_distances(brows: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Column-chunked ``ED_n`` of every block row to every centroid row."""
    g0 = centroids.shape[0]
    dists = np.empty((brows.shape[0], g0))
    for c0 in range(0, g0, _CHUNK_COLS):
        c1 = min(g0, c0 + _CHUNK_COLS)
        dists[:, c0:c1] = np.abs(
            brows[:, None, :] - centroids[None, c0:c1, :]
        ).mean(axis=2)
    return dists


def _online_scan(
    matrix: np.ndarray,
    row_order: np.ndarray,
    group_radius: float,
    length: int,
    batched: bool,
) -> list[_DraftGroup]:
    """One mini-batched pass of the paper's online clustering.

    Rows are processed in blocks of ``_ASSIGN_BLOCK``: every row's
    distance to every existing centroid is evaluated in one
    (column-chunked) vectorised operation against the table *as of block
    start*, rows within the radius of their nearest centroid join that
    group, and centroid moves are applied once at block end.  Rows no
    existing group can absorb fall through to a sequential scan among the
    block's own newborn groups (so near-duplicate rows in one block still
    share a group, as in the row-at-a-time scan).

    Assigning against a frozen table means a joining row may land in a
    group whose centroid drifted earlier in the same block — the same
    kind of drift the row-at-a-time scan accrues as members move each
    centroid, just coarser-grained.  Strictness does not depend on it
    either way: the repair pass in :func:`cluster_subsequence_rows`
    evicts and re-clusters any member outside the radius of its *final*
    representative, so the published invariants hold exactly while the
    assignment's distance work runs entirely through block-sized kernels.

    *batched* dispatches between two decision-identical implementations:
    :func:`_scan_batched` (prescreened distance evaluation, ordered
    scatter joins) and :func:`_scan_reference` (the original row-at-a-
    time bookkeeping, retained as the cross-check baseline).
    """
    scan = _scan_batched if batched else _scan_reference
    return scan(matrix, np.asarray(row_order), group_radius, length)


def _scan_reference(
    matrix: np.ndarray,
    order: np.ndarray,
    group_radius: float,
    length: int,
) -> list[_DraftGroup]:
    """The original scan: full distance table, row-at-a-time bookkeeping."""
    drafts: list[_DraftGroup] = []
    table = _CentroidTable(length)
    for b0 in range(0, order.shape[0], _ASSIGN_BLOCK):
        block = order[b0 : b0 + _ASSIGN_BLOCK]
        nb = block.shape[0]
        brows = matrix[block]
        g0 = len(table)
        if g0:
            dists = _block_distances(brows, table.matrix)
            best_idx = np.argmin(dists, axis=1)
            joins = dists[np.arange(nb), best_idx] <= group_radius
        else:
            best_idx = np.zeros(nb, dtype=np.int64)
            joins = np.zeros(nb, dtype=bool)
        new_table = _CentroidTable(length)
        new_drafts: list[_DraftGroup] = []
        moved: set[int] = set()
        for bi in range(nb):
            k = int(block[bi])
            row = brows[bi]
            if joins[bi]:
                gi = int(best_idx[bi])
                drafts[gi].add(k, row)
                moved.add(gi)
                continue
            idx, dist = new_table.nearest(row)
            if idx >= 0 and dist <= group_radius:
                draft = new_drafts[idx]
                draft.add(k, row)
                new_table.update(idx, draft.centroid)
            else:
                draft = _DraftGroup(length)
                draft.add(k, row)
                new_drafts.append(draft)
                new_table.append(draft.centroid)
        for gi in moved:
            table.update(gi, drafts[gi].centroid)
        for draft in new_drafts:
            drafts.append(draft)
            table.append(draft.centroid)
    return drafts


def _scan_batched(
    matrix: np.ndarray,
    order: np.ndarray,
    group_radius: float,
    length: int,
) -> list[_DraftGroup]:
    """The vectorised scan: prescreened distances, ordered scatter joins.

    Decision-identical to :func:`_scan_reference`, block by block:

    - **Prescreen** — a centroid whose mean differs from a row's mean by
      more than the radius (plus :data:`_LB_MARGIN` slack) can never
      absorb that row (``ED_n >= |Δmean|`` by the triangle inequality),
      and can never be the argmin *of a joining row* — any join winner
      has ``ED_n <= radius``.  Exact ``ED_n`` therefore only runs
      against the union of per-row candidate centroids; surviving
      columns keep ascending order, so first-of-ties argmin picks the
      same winner the full table would.
    - **Joins** — applied per block with one ``np.add.at`` scatter onto
      the touched drafts' current totals.  Repeated indices accumulate
      unbuffered in index order, and the stable by-draft grouping keeps
      each draft's rows in block order, so the centroid drift matches
      the reference's sequential ``total += row`` bit for bit.
    - **Newborns** — rows no existing group absorbs replay the exact
      sequential fallback (each may join a group seeded earlier in the
      same block), with the table bookkeeping inlined on flat arrays.
    """
    drafts: list[_DraftGroup] = []
    capacity = 16
    table = np.empty((capacity, length), dtype=np.float64)
    tmeans = np.empty(capacity, dtype=np.float64)
    g_count = 0
    for b0 in range(0, order.shape[0], _ASSIGN_BLOCK):
        block = order[b0 : b0 + _ASSIGN_BLOCK]
        nb = block.shape[0]
        brows = matrix[block]
        block_ids = block.tolist()
        rmeans = brows.mean(axis=1)
        scale = 1.0 + float(np.abs(rmeans).max())
        join_pos = np.empty(0, dtype=np.int64)
        best_idx = None
        if g_count:
            live_means = tmeans[:g_count]
            scale = max(scale, 1.0 + float(np.abs(live_means).max()))
            cutoff = group_radius + _LB_MARGIN * scale
            if g_count <= _SMALL_TABLE:
                dists = _block_distances(brows, table[:g_count])
                best_idx = np.argmin(dists, axis=1)
                best = dists[np.arange(nb), best_idx]
                join_pos = np.nonzero(best <= group_radius)[0]
            else:
                # Tiled prescreened evaluation.  Centroids sorted by
                # mean give every row a contiguous candidate range
                # (|Δmean| <= cutoff, the conservative |Δmean| <= ED_n
                # bound); rows sorted by mean make neighbouring rows'
                # ranges overlap, so a 16-row tile evaluates exact ED_n
                # once over the union of its ranges.  Extra columns in
                # the union are harmless — their exact distance provably
                # exceeds the radius, so they can neither flip a join
                # decision nor win an argmin that matters — and the
                # winner is recovered as the *smallest centroid id*
                # attaining the tile-row minimum, which is exactly the
                # reference's first-of-ties ``np.argmin``.
                col_order = np.argsort(live_means, kind="stable")
                sorted_means = live_means[col_order]
                lo_pos = np.searchsorted(sorted_means, rmeans - cutoff, "left")
                hi_pos = np.searchsorted(sorted_means, rmeans + cutoff, "right")
                row_order = np.argsort(rmeans, kind="stable")
                best_val = np.full(nb, np.inf)
                best_idx = np.zeros(nb, dtype=np.int64)
                for r0 in range(0, nb, _TILE_ROWS):
                    tile = row_order[r0 : r0 + _TILE_ROWS]
                    c0 = int(lo_pos[tile].min())
                    c1 = int(hi_pos[tile].max())
                    if c0 >= c1:
                        continue
                    col_ids = col_order[c0:c1]
                    sub = table[col_ids]
                    dists = np.abs(
                        brows[tile][:, None, :] - sub[None, :, :]
                    ).sum(axis=2)
                    dists /= length
                    tile_min = dists.min(axis=1)
                    winner = np.where(
                        dists <= tile_min[:, None], col_ids[None, :], g_count
                    ).min(axis=1)
                    best_val[tile] = tile_min
                    best_idx[tile] = winner
                join_pos = np.nonzero(best_val <= group_radius)[0]
        if join_pos.size:
            gis = best_idx[join_pos]
            by_draft = np.argsort(gis, kind="stable")
            sorted_pos = join_pos[by_draft]
            sorted_gis = gis[by_draft]
            bounds = np.concatenate(
                ([0], np.nonzero(np.diff(sorted_gis))[0] + 1, [sorted_gis.size])
            )
            touched = sorted_gis[bounds[:-1]].tolist()
            totals = np.stack([drafts[g].total for g in touched])
            slots = np.repeat(
                np.arange(len(touched)), np.diff(bounds)
            )
            np.add.at(totals, slots, brows[sorted_pos])
            joined_ids = block[sorted_pos].tolist()
            for t, gi in enumerate(touched):
                s0, s1 = int(bounds[t]), int(bounds[t + 1])
                draft = drafts[gi]
                draft.row_indices.extend(joined_ids[s0:s1])
                draft.total = totals[t]
                draft.count += s1 - s0
            join_mask = np.zeros(nb, dtype=bool)
            join_mask[join_pos] = True
            scan_positions = np.nonzero(~join_mask)[0].tolist()
        else:
            touched = []
            scan_positions = range(nb)
        # Newborn fallback.  The reference walks these rows one at a time
        # because a row may join a group seeded by an earlier row of the
        # same block.  The runs *between* joins are batchable, though: as
        # long as no join happens, every newborn centroid equals its seed
        # row, so each row's nearest-newborn distance is a plain pairwise
        # ``ED_n`` among the fallback rows — computed once per block as a
        # matrix.  The loop therefore jumps straight to the first row
        # whose distance (to a live column or to an earlier run row)
        # drops inside the radius, bulk-creates everything before it,
        # applies that single join (recomputing just the moved centroid's
        # column), and repeats.  Joins are rare in this path — that is
        # why the rows ended up here — so most blocks finish in one jump.
        new_drafts, new_cent, n_new = _newborn_runs(
            brows, scan_positions, block_ids, group_radius, length
        )
        needed = g_count + n_new
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, length), dtype=np.float64)
            grown[:g_count] = table[:g_count]
            table = grown
            grown_means = np.empty(capacity, dtype=np.float64)
            grown_means[:g_count] = tmeans[:g_count]
            tmeans = grown_means
        for gi in touched:
            draft = drafts[gi]
            table[gi] = draft.total
            table[gi] /= draft.count
        if n_new:
            table[g_count:needed] = new_cent[:n_new]
            drafts.extend(new_drafts)
        if touched or n_new:
            refresh = np.asarray(
                touched + list(range(g_count, needed)), dtype=np.int64
            )
            tmeans[refresh] = table[refresh].mean(axis=1)
            g_count = needed
    return drafts


#: Table sizes at or below this evaluate the full block-distance matrix
#: directly; the tiled prescreen only pays off once the centroid table is
#: large enough for sorting and range queries to beat brute force.
_SMALL_TABLE = 128

#: Block rows per tile of the prescreened evaluation.
_TILE_ROWS = 16

#: Consecutive newborn *creations* after which the fallback switches from
#: the row-at-a-time walk to run-until-join batching.  Dense-join blocks
#: (loose radii) stay on the cheap sequential walk and never pay for the
#: pairwise matrix; creation-dominated blocks (tight radii, rescans of
#: hard rows) amortise it across the whole remainder.
_RUN_SWITCH_STREAK = 16


def _newborn_runs(
    brows: np.ndarray,
    scan_positions,
    block_ids: list[int],
    group_radius: float,
    length: int,
) -> tuple[list[_DraftGroup], np.ndarray, int]:
    """Replay one block's newborn fallback, batching creation runs.

    Exactly reproduces the reference's sequential semantics — each row
    joins the first-of-ties nearest *live* newborn centroid within the
    radius, else seeds a new one.  The walk starts row-at-a-time; once
    :data:`_RUN_SWITCH_STREAK` consecutive rows have all *created*
    (the signature of a tight radius, where almost nothing coalesces),
    the remainder flips to run-until-join batches: one pairwise ``ED_n``
    matrix among the remaining rows doubles as the centroid distance
    table while every centroid still equals its seed row, whole no-join
    runs bulk-create with zero further distance work, and a join
    invalidates (recomputes) exactly one column.  Returns the created
    drafts, their end-of-block centroid matrix, and the count.
    """
    positions = list(scan_positions)
    nr = len(positions)
    if not nr:
        return [], np.empty((0, length), dtype=np.float64), 0
    R = brows[positions]
    T = R.copy()  # per-draft running totals (row j seeds draft j's total)
    centroids = np.empty((nr, length), dtype=np.float64)
    new_drafts: list[_DraftGroup] = []
    ncols = 0
    pos = 0
    streak = 0
    # Phase 1: the reference walk (cheap while joins keep happening).
    while pos < nr and streak < _RUN_SWITCH_STREAK:
        row = R[pos]
        if ncols:
            d = np.abs(centroids[:ncols] - row).sum(axis=1)
            d /= length
            w = int(d.argmin())
            if d[w] <= group_radius:
                draft = new_drafts[w]
                draft.add(block_ids[positions[pos]], row)
                centroids[w] = draft.total
                centroids[w] /= draft.count
                pos += 1
                streak = 0
                continue
        draft = _DraftGroup.__new__(_DraftGroup)
        draft.row_indices = [block_ids[positions[pos]]]
        draft.total = T[pos]
        draft.count = 1
        new_drafts.append(draft)
        centroids[ncols] = row
        ncols += 1
        pos += 1
        streak += 1
    if pos == nr:
        return new_drafts, centroids[:ncols], ncols
    # Phase 2: run-until-join batching over the remaining rows.  M's
    # columns stay aligned with the draft slots (creation order), so the
    # argmin below reads off the reference's first-of-ties winner.
    rem = nr - pos
    R2 = R[pos:]
    base = ncols  # live columns seeded before the switch
    M = np.empty((rem, base + rem), dtype=np.float64)
    if base:
        for c0 in range(0, base, _CHUNK_COLS):
            c1 = min(base, c0 + _CHUNK_COLS)
            M[:, c0:c1] = np.abs(
                R2[:, None, :] - centroids[None, c0:c1, :]
            ).sum(axis=2)
        M[:, :base] /= length
    pair = np.abs(R2[:, None, :] - R2[None, :, :]).sum(axis=2)
    pair /= length
    invalid = np.triu(np.ones((rem, rem), dtype=bool))
    lo = 0  # local cursor into R2
    while lo < rem:
        colmin = M[lo:, :ncols].min(axis=1)
        pairmin = np.where(invalid[lo:, lo:], np.inf, pair[lo:, lo:]).min(axis=1)
        hits = np.nonzero(np.minimum(colmin, pairmin) <= group_radius)[0]
        stop = int(hits[0]) if hits.size else rem - lo
        if stop:
            # Bulk-create: every run row seeds a singleton whose centroid
            # column is its (already computed) pairwise row.
            centroids[ncols : ncols + stop] = R2[lo : lo + stop]
            M[:, ncols : ncols + stop] = pair[:, lo : lo + stop]
            for j in range(lo, lo + stop):
                draft = _DraftGroup.__new__(_DraftGroup)
                draft.row_indices = [block_ids[positions[pos + j]]]
                draft.total = T[pos + j]
                draft.count = 1
                new_drafts.append(draft)
            ncols += stop
        if not hits.size:
            break
        t = lo + stop
        w = int(M[t, :ncols].argmin())  # first-of-ties, creation order
        draft = new_drafts[w]
        draft.add(block_ids[positions[pos + t]], R2[t])
        centroids[w] = draft.total
        centroids[w] /= draft.count
        column = np.abs(R2 - centroids[w]).sum(axis=1)
        column /= length
        M[:, w] = column
        lo = t + 1
    return new_drafts, centroids[:ncols], ncols


def cluster_subsequence_rows(
    matrix: np.ndarray,
    group_radius: float,
    *,
    max_repair_rounds: int = 4,
    batched: bool = True,
) -> list[RowGroup]:
    """Cluster equal-length window rows into finalized groups.

    The handle-free clustering core: *matrix* rows are the subsequence
    values, *group_radius* is ``ST/2``, and the returned
    :class:`RowGroup`\\ s carry member *row indices* instead of refs.
    Invariants (see module docstring) hold strictly; *batched* picks the
    vectorised or the original scalar execution of the scan joins and the
    repair rounds — results are bit-identical either way.
    """
    if matrix.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {matrix.shape}")
    if group_radius <= 0:
        raise ValidationError(f"group_radius must be > 0, got {group_radius}")
    if matrix.shape[0] == 0:
        return []
    length = matrix.shape[1]

    drafts = _online_scan(
        matrix, np.arange(matrix.shape[0]), group_radius, length, batched
    )

    final: list[RowGroup] = []

    def finalize(
        draft: _DraftGroup, centroid: np.ndarray, ed_max: float, cheb_max: float
    ) -> None:
        final.append(
            RowGroup(
                centroid=centroid,
                rows=np.asarray(draft.row_indices, dtype=np.int64),
                ed_radius=float(ed_max),
                cheb_radius=float(cheb_max),
            )
        )

    def repair_split(
        draft: _DraftGroup, bad: np.ndarray, rows: np.ndarray
    ) -> tuple[_DraftGroup | None, list[int]]:
        """Split one violating draft into its conforming core + evictions.

        In batched mode the core's running total is taken from the last
        row of a ``cumsum`` over the conforming rows — a strictly
        sequential scan, so it matches, bit for bit, what the retained
        per-row ``total += row`` rebuild (the scalar branch below)
        accumulates.
        """
        good = np.nonzero(~bad)[0]
        evicted = [draft.row_indices[j] for j in np.nonzero(bad)[0]]
        if not good.size:
            return None, evicted
        if batched:
            core = _DraftGroup(length)
            core.row_indices = [draft.row_indices[j] for j in good.tolist()]
            core.total = np.cumsum(rows[good], axis=0)[-1]
            core.count = int(good.size)
            return core, evicted
        core = _DraftGroup(length)
        for j in good:
            core.add(draft.row_indices[j], rows[j])
        return core, evicted

    # Repair: re-establish the strict member-to-final-centroid invariant.
    # Each round keeps the conforming core of every violating draft and
    # re-clusters the evicted members from scratch; after the round budget
    # is spent, remaining violators become singleton groups (which satisfy
    # the invariant trivially), so the procedure always terminates with
    # strict guarantees.
    pending = drafts
    for round_no in range(max_repair_rounds):
        violator_rows: list[int] = []
        next_pending: list[_DraftGroup] = []
        if batched:
            # One flat masked evaluation covers every draft of the round:
            # member deviations against each draft's centroid in a single
            # gather, per-draft maxima via reduceat segments.  Per-row
            # values (and therefore the eviction decisions and recorded
            # radii) are identical to the per-draft loop below.
            counts = np.fromiter(
                (d.count for d in pending), np.int64, len(pending)
            )
            offsets = np.concatenate(([0], np.cumsum(counts)))
            flat_rows = np.concatenate(
                [np.asarray(d.row_indices, dtype=np.int64) for d in pending]
            )
            centroids = np.vstack([d.centroid for d in pending])
            deviations = np.abs(
                matrix[flat_rows]
                - np.repeat(centroids, counts, axis=0)
            )
            eds = deviations.mean(axis=1)
            chebs = deviations.max(axis=1)
            bad = eds > group_radius + _EPS
            bad_counts = np.add.reduceat(bad.astype(np.int64), offsets[:-1])
            ed_maxima = np.maximum.reduceat(eds, offsets[:-1])
            cheb_maxima = np.maximum.reduceat(chebs, offsets[:-1])
            for d, draft in enumerate(pending):
                if not bad_counts[d]:
                    finalize(draft, centroids[d], ed_maxima[d], cheb_maxima[d])
                    continue
                seg = slice(offsets[d], offsets[d + 1])
                core, evicted = repair_split(
                    draft, bad[seg], matrix[flat_rows[seg]]
                )
                if core is not None:
                    next_pending.append(core)
                violator_rows.extend(evicted)
        else:
            for draft in pending:
                centroid = draft.centroid
                rows = matrix[draft.row_indices]
                deviations = np.abs(rows - centroid)
                eds = deviations.mean(axis=1)
                bad = eds > group_radius + _EPS
                if not bad.any():
                    finalize(
                        draft, centroid, eds.max(), deviations.max(axis=1).max()
                    )
                    continue
                core, evicted = repair_split(draft, bad, rows)
                if core is not None:
                    next_pending.append(core)
                violator_rows.extend(evicted)
        if violator_rows:
            next_pending.extend(
                _online_scan(
                    matrix, np.array(violator_rows), group_radius, length, batched
                )
            )
        if not next_pending:
            return final
        pending = next_pending

    # Round budget exhausted: shrink each remaining draft to a conforming
    # core, evicting persistent violators as singletons.
    for draft in pending:
        indices = list(draft.row_indices)
        while indices:
            rows = matrix[indices]
            centroid = rows.mean(axis=0)
            deviations = np.abs(rows - centroid)
            eds = deviations.mean(axis=1)
            bad = eds > group_radius + _EPS
            if not bad.any():
                core = _DraftGroup(length)
                for row_idx, row in zip(indices, rows):
                    core.add(row_idx, row)
                finalize(core, centroid, eds.max(), deviations.max(axis=1).max())
                break
            # Evict the worst member as a singleton and retry the rest.
            worst = int(np.argmax(eds))
            single = _DraftGroup(length)
            single.add(indices[worst], rows[worst])
            finalize(single, rows[worst], 0.0, 0.0)
            del indices[worst]
    return final


def cluster_subsequences(
    matrix: np.ndarray,
    refs: list[SubsequenceRef],
    group_radius: float,
    *,
    max_repair_rounds: int = 4,
    batched: bool = True,
) -> list[SimilarityGroup]:
    """Cluster equal-length subsequences into finalized similarity groups.

    *matrix* rows are the subsequence values, *refs* their handles (same
    order).  *group_radius* is ``ST/2``.  Returns groups whose invariants
    (see module docstring) hold strictly.  Thin handle-resolving wrapper
    over :func:`cluster_subsequence_rows`.
    """
    if matrix.ndim == 2 and matrix.shape[0] != len(refs):
        raise ValidationError(
            f"matrix rows ({matrix.shape[0]}) != refs ({len(refs)})"
        )
    length = matrix.shape[1] if matrix.ndim == 2 else 0
    return [
        SimilarityGroup(
            length=length,
            centroid=group.centroid,
            members=tuple(refs[k] for k in group.rows.tolist()),
            ed_radius=group.ed_radius,
            cheb_radius=group.cheb_radius,
        )
        for group in cluster_subsequence_rows(
            matrix,
            group_radius,
            max_repair_rounds=max_repair_rounds,
            batched=batched,
        )
    ]
