"""ONEX similarity groups (§3.1) and the per-length online clustering.

A :class:`SimilarityGroup` collects same-length subsequences that are
mutually similar under the cheap length-normalised L1 distance ``ED_n``
and summarises them by their centroid ("representative").  Construction
follows the paper: scan subsequences in order, assign each to the nearest
existing group whose centroid is within ``ST/2``, else seed a new group.

Because the centroid moves as members join, the strict invariant *every
member within ``ST/2`` of the final representative* is re-established by a
finalize/repair pass (:func:`cluster_subsequences` → ``_repair``): members
that drifted outside the radius are pulled out and re-clustered, with
singleton groups as the guaranteed-terminating fallback.  After repair the
triangle inequality of ``ED_n`` gives the paper's pairwise guarantee: any
two members of one group are within ``ST`` of each other.  Both properties
are asserted by the test suite on randomised inputs.

Each finalized group also records two radii the query processor needs:

- ``ed_radius`` — max ``ED_n(member, representative)`` (``<= ST/2``),
- ``cheb_radius`` — max ``max_j |member_j - rep_j|``, which feeds the
  transfer-inequality group pruning (:mod:`repro.distances.bounds`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.exceptions import InvariantError, ValidationError

__all__ = ["SimilarityGroup", "cluster_subsequences"]

#: Tolerance added to radius checks to absorb float round-off.
_EPS = 1e-9


@dataclass
class SimilarityGroup:
    """A finalized ONEX similarity group of same-length subsequences."""

    length: int
    centroid: np.ndarray
    members: tuple[SubsequenceRef, ...]
    ed_radius: float
    cheb_radius: float

    @property
    def cardinality(self) -> int:
        return len(self.members)

    def validate(self, dataset: TimeSeriesDataset, group_radius: float) -> None:
        """Assert the construction invariants against *dataset*.

        Raises :class:`InvariantError` when any member sits farther than
        ``group_radius`` (= ``ST/2``) from the representative or when the
        recorded radii understate reality.  Used by tests and debug paths;
        O(members * length).
        """
        for ref in self.members:
            values = dataset.values(ref)
            ed = float(np.abs(values - self.centroid).mean())
            cheb = float(np.abs(values - self.centroid).max())
            if ed > group_radius + _EPS:
                raise InvariantError(
                    f"member {ref} at ED_n {ed:.6g} exceeds group radius "
                    f"{group_radius:.6g}"
                )
            if ed > self.ed_radius + _EPS or cheb > self.cheb_radius + _EPS:
                raise InvariantError(
                    f"member {ref} outside recorded radii (ed={ed:.6g}, "
                    f"cheb={cheb:.6g})"
                )


class _DraftGroup:
    """Mutable group used during the online scan, before finalisation."""

    __slots__ = ("refs", "row_indices", "total", "count")

    def __init__(self, length: int) -> None:
        self.refs: list[SubsequenceRef] = []
        self.row_indices: list[int] = []
        self.total = np.zeros(length, dtype=np.float64)
        self.count = 0

    def add(self, ref: SubsequenceRef, row_index: int, values: np.ndarray) -> None:
        self.refs.append(ref)
        self.row_indices.append(row_index)
        self.total += values
        self.count += 1

    @property
    def centroid(self) -> np.ndarray:
        return self.total / self.count


class _CentroidTable:
    """Growable matrix of current centroids for vectorised assignment."""

    def __init__(self, length: int) -> None:
        self._length = length
        self._capacity = 16
        self._matrix = np.empty((self._capacity, length), dtype=np.float64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def matrix(self) -> np.ndarray:
        """The live centroid rows (view; do not mutate)."""
        return self._matrix[: self._count]

    def append(self, centroid: np.ndarray) -> None:
        if self._count == self._capacity:
            self._capacity *= 2
            grown = np.empty((self._capacity, self._length), dtype=np.float64)
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = centroid
        self._count += 1

    def update(self, index: int, centroid: np.ndarray) -> None:
        self._matrix[index] = centroid

    def nearest(self, row: np.ndarray) -> tuple[int, float]:
        """(index, ED_n) of the closest current centroid to *row*."""
        if self._count == 0:
            return -1, np.inf
        dists = np.abs(self._matrix[: self._count] - row).mean(axis=1)
        idx = int(np.argmin(dists))
        return idx, float(dists[idx])


#: Rows per assignment block in the online scan.  Per block, the distance
#: of every row to every existing centroid is evaluated in one vectorised
#: operation instead of one ``nearest`` call per row.
_ASSIGN_BLOCK = 128

#: Centroid columns per chunk of the block distance evaluation; bounds the
#: 3-D temporary at block × chunk × length so it stays cache-resident
#: instead of streaming a block × table × length array through memory.
_CHUNK_COLS = 128


def _online_scan(
    matrix: np.ndarray,
    refs: list[SubsequenceRef],
    row_order: np.ndarray,
    group_radius: float,
    length: int,
) -> list[_DraftGroup]:
    """One mini-batched pass of the paper's online clustering.

    Rows are processed in blocks of ``_ASSIGN_BLOCK``: every row's
    distance to every existing centroid is evaluated in one
    (column-chunked) vectorised operation against the table *as of block
    start*, rows within the radius of their nearest centroid join that
    group, and centroid moves are applied once at block end.  Rows no
    existing group can absorb fall through to a sequential scan among the
    block's own newborn groups (so near-duplicate rows in one block still
    share a group, as in the row-at-a-time scan).

    Assigning against a frozen table means a joining row may land in a
    group whose centroid drifted earlier in the same block — the same
    kind of drift the row-at-a-time scan accrues as members move each
    centroid, just coarser-grained.  Strictness does not depend on it
    either way: the repair pass in :func:`cluster_subsequences` evicts
    and re-clusters any member outside the radius of its *final*
    representative, so the published invariants hold exactly while the
    assignment's distance work runs entirely through block-sized kernels
    (two per block, instead of one whole-table scan per row).
    """
    drafts: list[_DraftGroup] = []
    table = _CentroidTable(length)
    order = np.asarray(row_order)
    for b0 in range(0, order.shape[0], _ASSIGN_BLOCK):
        block = order[b0 : b0 + _ASSIGN_BLOCK]
        nb = block.shape[0]
        brows = matrix[block]
        g0 = len(table)
        if g0:
            dists = np.empty((nb, g0))
            for c0 in range(0, g0, _CHUNK_COLS):
                c1 = min(g0, c0 + _CHUNK_COLS)
                dists[:, c0:c1] = np.abs(
                    brows[:, None, :] - table.matrix[None, c0:c1, :]
                ).mean(axis=2)
            best_idx = np.argmin(dists, axis=1)
            joins = dists[np.arange(nb), best_idx] <= group_radius
        else:
            best_idx = np.zeros(nb, dtype=np.int64)
            joins = np.zeros(nb, dtype=bool)
        new_table = _CentroidTable(length)
        new_drafts: list[_DraftGroup] = []
        moved: set[int] = set()
        for bi in range(nb):
            k = int(block[bi])
            row = brows[bi]
            if joins[bi]:
                gi = int(best_idx[bi])
                drafts[gi].add(refs[k], k, row)
                moved.add(gi)
                continue
            idx, dist = new_table.nearest(row)
            if idx >= 0 and dist <= group_radius:
                draft = new_drafts[idx]
                draft.add(refs[k], k, row)
                new_table.update(idx, draft.centroid)
            else:
                draft = _DraftGroup(length)
                draft.add(refs[k], k, row)
                new_drafts.append(draft)
                new_table.append(draft.centroid)
        for gi in moved:
            table.update(gi, drafts[gi].centroid)
        for draft in new_drafts:
            drafts.append(draft)
            table.append(draft.centroid)
    return drafts


def cluster_subsequences(
    matrix: np.ndarray,
    refs: list[SubsequenceRef],
    group_radius: float,
    *,
    max_repair_rounds: int = 4,
) -> list[SimilarityGroup]:
    """Cluster equal-length subsequences into finalized similarity groups.

    *matrix* rows are the subsequence values, *refs* their handles (same
    order).  *group_radius* is ``ST/2``.  Returns groups whose invariants
    (see module docstring) hold strictly.
    """
    if matrix.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[0] != len(refs):
        raise ValidationError(
            f"matrix rows ({matrix.shape[0]}) != refs ({len(refs)})"
        )
    if group_radius <= 0:
        raise ValidationError(f"group_radius must be > 0, got {group_radius}")
    if matrix.shape[0] == 0:
        return []
    length = matrix.shape[1]

    drafts = _online_scan(
        matrix, refs, np.arange(matrix.shape[0]), group_radius, length
    )

    final: list[SimilarityGroup] = []

    def finalize(draft: _DraftGroup, centroid: np.ndarray, rows: np.ndarray, eds: np.ndarray) -> None:
        chebs = np.abs(rows - centroid).max(axis=1)
        final.append(
            SimilarityGroup(
                length=length,
                centroid=centroid,
                members=tuple(draft.refs),
                ed_radius=float(eds.max()),
                cheb_radius=float(chebs.max()),
            )
        )

    # Repair: re-establish the strict member-to-final-centroid invariant.
    # Each round keeps the conforming core of every violating draft and
    # re-clusters the evicted members from scratch; after the round budget
    # is spent, remaining violators become singleton groups (which satisfy
    # the invariant trivially), so the procedure always terminates with
    # strict guarantees.
    pending = drafts
    for round_no in range(max_repair_rounds):
        violator_rows: list[int] = []
        next_pending: list[_DraftGroup] = []
        for draft in pending:
            centroid = draft.centroid
            rows = matrix[draft.row_indices]
            eds = np.abs(rows - centroid).mean(axis=1)
            bad = eds > group_radius + _EPS
            if not bad.any():
                finalize(draft, centroid, rows, eds)
                continue
            core = _DraftGroup(length)
            for j in np.nonzero(~bad)[0]:
                core.add(draft.refs[j], draft.row_indices[j], rows[j])
            if core.count:
                next_pending.append(core)
            violator_rows.extend(draft.row_indices[j] for j in np.nonzero(bad)[0])
        if violator_rows:
            next_pending.extend(
                _online_scan(
                    matrix, refs, np.array(violator_rows), group_radius, length
                )
            )
        if not next_pending:
            return final
        pending = next_pending

    # Round budget exhausted: shrink each remaining draft to a conforming
    # core, evicting persistent violators as singletons.
    for draft in pending:
        indices = list(draft.row_indices)
        group_refs = list(draft.refs)
        while indices:
            rows = matrix[indices]
            centroid = rows.mean(axis=0)
            eds = np.abs(rows - centroid).mean(axis=1)
            bad = eds > group_radius + _EPS
            if not bad.any():
                core = _DraftGroup(length)
                for ref, row_idx, row in zip(group_refs, indices, rows):
                    core.add(ref, row_idx, row)
                finalize(core, centroid, rows, eds)
                break
            # Evict the worst member as a singleton and retry the rest.
            worst = int(np.argmax(eds))
            single = _DraftGroup(length)
            single.add(group_refs[worst], indices[worst], rows[worst])
            finalize(
                single,
                rows[worst],
                rows[worst][None, :],
                np.zeros(1),
            )
            del indices[worst], group_refs[worst]
    return final
