"""Parameter records for ONEX base construction and querying."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deadline import Deadline
from repro.exceptions import ValidationError

__all__ = ["BuildConfig", "QueryConfig"]


@dataclass(frozen=True)
class BuildConfig:
    """Parameters of the offline ONEX base construction (§3.1).

    Attributes
    ----------
    similarity_threshold:
        ``ST`` — two subsequences are "similar" when their
        length-normalised L1 distance is below this.  Groups are built so
        members sit within ``ST/2`` of their representative.  On a [0, 1]
        min–max normalised dataset, useful values are roughly 0.01–0.3; the
        threshold recommender (:mod:`repro.core.threshold`) suggests one.
    min_length / max_length:
        Subsequence length range to index.  The raw subsequence count grows
        quadratically with series length, so bounding the range is how
        deployments keep preprocessing tractable.
    step:
        Stride between window starts (1 = every subsequence, the paper's
        setting).
    normalize:
        Min–max normalise the dataset (collection-level bounds) at load
        time; the paper always does.
    num_workers:
        Fan the per-length build jobs over this many workers.  ``1`` (the
        default) runs the jobs in-process with no executor; higher values
        engage the configured pool.  Per-length jobs are shared-nothing
        and merged deterministically, so every setting builds an
        identical base (``OnexBase.structure_fingerprint``) — this is an
        execution knob, not a semantic parameter, and it is deliberately
        **not** persisted in saved archives.
    build_executor:
        Pool flavour for ``num_workers > 1``: ``"process"`` (the default;
        sidesteps the GIL — the clustering scan keeps Python-level
        bookkeeping per block) or ``"thread"`` (no fork/pickle overhead;
        useful when the dataset is large relative to the clustering
        work, or where subprocesses are unavailable).
    """

    similarity_threshold: float
    min_length: int
    max_length: int
    step: int = 1
    normalize: bool = True
    num_workers: int = 1
    build_executor: str = "process"

    def __post_init__(self) -> None:
        if not self.similarity_threshold > 0:
            raise ValidationError(
                f"similarity_threshold must be > 0, got {self.similarity_threshold}"
            )
        if self.min_length < 2:
            raise ValidationError(f"min_length must be >= 2, got {self.min_length}")
        if self.max_length < self.min_length:
            raise ValidationError(
                f"max_length ({self.max_length}) < min_length ({self.min_length})"
            )
        if self.step < 1:
            raise ValidationError(f"step must be >= 1, got {self.step}")
        if self.num_workers < 1:
            raise ValidationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.build_executor not in ("process", "thread"):
            raise ValidationError(
                "build_executor must be 'process' or 'thread', "
                f"got {self.build_executor!r}"
            )

    @property
    def group_radius(self) -> float:
        """``ST/2`` — the member-to-representative construction radius."""
        return self.similarity_threshold / 2.0


@dataclass(frozen=True)
class QueryConfig:
    """Parameters of the online query phase (§3.2/3.3).

    Attributes
    ----------
    mode:
        ``"fast"`` — the paper's strategy: rank representatives by DTW,
        refine only the most promising ``refine_groups`` groups.  Several
        times faster; may miss a best match hiding in an unrefined group.
        ``"exact"`` — refine every group not excluded by a *provable*
        lower bound; always returns the true best match over the indexed
        subsequences.
    refine_groups:
        How many top-ranked groups the fast mode refines (1 reproduces the
        demo's behaviour; a handful trades a little speed for accuracy).
    window:
        Optional Sakoe–Chiba radius for all DTW evaluations.
    use_lower_bounds:
        Toggle LB_Kim/LB_Keogh pre-filters on representative evaluations
        (ablation E9 switches this off).
    use_group_pruning:
        Toggle the transfer-inequality group pruning (ablation E9).
    use_member_batching:
        Refine group members through the vectorised lower-bound cascade
        and batched DTW kernel (the default).  ``False`` falls back to the
        legacy one-member-at-a-time scan with scalar early-abandon DTW —
        kept for ablation benchmarks and the exactness cross-check; both
        paths return identical matches.
    use_rep_prefilter:
        Rank and prune representatives with the persisted summary bounds
        (centroid Keogh envelopes + LB_Kim endpoints + the transfer
        inequality) and run exact representative DTW *lazily*, so
        representatives whose cheap bound exceeds the running cutoff
        never get a DTW call (the default).  ``False`` restores the
        eager PR-1 behaviour — exact DTW against every representative up
        front — kept for ablations and the exactness cross-check; both
        paths return identical matches in exact mode and identical
        rankings in fast mode.
    batch_min_members:
        Refinement units (a group, or an exact-mode chunk of groups)
        with fewer stacked member rows than this run the legacy scalar
        early-abandon scan instead of the batched cascade: below the
        threshold the batched kernels' fixed per-call dispatch overhead
        exceeds the whole computation.  The default was picked from
        ``benchmarks/bench_rep_cascade.py`` (see DESIGN.md §1); ``0``
        forces every unit through the batched path.
    use_analytics_batching:
        Run the analytics operations — seasonal verification, the
        sensitivity profile, and threshold recommendation — on the
        batched cascade (condensed pairwise DTW, summary-bound group
        prescreen, stacked member verification; the default).  ``False``
        routes them through the retained seed scalar implementations —
        identical results, kept for ablations and the exactness
        cross-checks (``benchmarks/run_all.py`` E17).
    deadline:
        Default cooperative :class:`~repro.core.deadline.Deadline` for
        every operation run under this config, checked at the cascade's
        chunk boundaries (DESIGN.md §6).  ``None`` (the default) runs
        unbounded; per-call ``deadline=`` arguments override it.  A
        finished-in-budget operation is bit-identical to an unbounded
        one — the deadline is pure control flow, never a result knob.
    metric:
        Distance metric for query/threshold operations, resolved through
        :mod:`repro.distances.registry` (DESIGN.md §9).  ``"dtw"`` (the
        default) on a univariate base runs the classic representative
        cascade, bit-identical to the pre-registry engine; every other
        metric — and any metric on a multivariate base — runs the
        metric scan with that metric's lower-bound prescreen where one is
        registered and a brute-force-verified full scan where it isn't.
        Unknown names raise :class:`~repro.exceptions.ValidationError`.
    """

    mode: str = "fast"
    refine_groups: int = 1
    window: int | None = None
    use_lower_bounds: bool = True
    use_group_pruning: bool = True
    use_member_batching: bool = True
    use_rep_prefilter: bool = True
    batch_min_members: int = 8
    use_analytics_batching: bool = True
    deadline: Deadline | None = None
    metric: str = "dtw"

    def __post_init__(self) -> None:
        from repro.distances.registry import get_metric

        if self.mode not in ("fast", "exact"):
            raise ValidationError(f"mode must be 'fast' or 'exact', got {self.mode!r}")
        get_metric(self.metric)  # ValidationError for unknown names
        if self.refine_groups < 1:
            raise ValidationError(
                f"refine_groups must be >= 1, got {self.refine_groups}"
            )
        if self.window is not None and self.window < 0:
            raise ValidationError(f"window must be >= 0, got {self.window}")
        if self.batch_min_members < 0:
            raise ValidationError(
                f"batch_min_members must be >= 0, got {self.batch_min_members}"
            )
        if self.deadline is not None and not isinstance(self.deadline, Deadline):
            raise ValidationError(
                f"deadline must be a Deadline, got {type(self.deadline).__name__}"
            )
