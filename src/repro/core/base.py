"""The ONEX base: compact, Euclidean-prepared index of similarity groups.

Offline phase (§3.1 / Fig. 1 top): every subsequence of the loaded
collection within the configured length range is clustered, per length,
into similarity groups using the cheap ``ED_n`` distance.  The base keeps
only the group representatives (centroids), radii, and member handles —
typically orders of magnitude fewer representatives than raw subsequences,
which is what makes DTW-based online exploration interactive.

The base can be persisted with :meth:`OnexBase.save` and reattached to the
same dataset with :meth:`OnexBase.load`, mirroring the demo's server-side
preprocessing-on-load workflow.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import BuildConfig
from repro.core.grouping import SimilarityGroup, cluster_subsequences
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.normalize import minmax_normalize
from repro.exceptions import DatasetError, NotBuiltError, ValidationError

__all__ = ["BaseStats", "LengthBucket", "OnexBase"]


@dataclass(frozen=True)
class BaseStats:
    """Construction summary (reported by E1/E7 benchmarks)."""

    subsequences: int
    groups: int
    lengths: int
    build_seconds: float

    @property
    def compaction_ratio(self) -> float:
        """Raw subsequences per representative — the data-reduction factor."""
        return self.subsequences / self.groups if self.groups else float("nan")


class LengthBucket:
    """All similarity groups for one subsequence length.

    Keeps the group centroids stacked in one matrix so the query processor
    can evaluate cheap bounds against every representative of a length in
    a single vectorised operation.  The member *values* are stacked the
    same way: ``member_matrix`` holds every member of every group as one
    2-D array, ``member_offsets[g] : member_offsets[g + 1]`` delimiting
    group ``g``'s rows (ordered as ``groups[g].members``).  This is what
    lets the query processor refine a whole group — lower-bound cascade
    and batched DTW — without resolving members one at a time.
    """

    def __init__(
        self,
        length: int,
        groups: list[SimilarityGroup],
        member_matrix: np.ndarray | None = None,
    ) -> None:
        self.length = length
        self.groups = groups
        if groups:
            self.centroids = np.vstack([g.centroid for g in groups])
            self.ed_radii = np.array([g.ed_radius for g in groups])
            self.cheb_radii = np.array([g.cheb_radius for g in groups])
        else:  # pragma: no cover - empty buckets are dropped by the builder
            self.centroids = np.empty((0, length))
            self.ed_radii = np.empty(0)
            self.cheb_radii = np.empty(0)
        self.member_offsets = np.cumsum(
            [0] + [g.cardinality for g in groups], dtype=np.int64
        )
        if member_matrix is not None:
            expected = (int(self.member_offsets[-1]), length)
            if member_matrix.shape != expected:
                raise ValidationError(
                    f"member matrix shape {member_matrix.shape} != {expected}"
                )
        self.member_matrix = member_matrix

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def member_count(self) -> int:
        return int(self.member_offsets[-1])

    def member_rows(self, g_idx: int) -> np.ndarray:
        """Values of group *g_idx*'s members as a 2-D slice (no copy)."""
        if self.member_matrix is None:
            raise NotBuiltError("member matrix not attached to this bucket")
        lo, hi = self.member_offsets[g_idx], self.member_offsets[g_idx + 1]
        return self.member_matrix[lo:hi]

    def ensure_member_matrix(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Build (once) and return the stacked member-value matrix."""
        if self.member_matrix is None:
            matrix = np.empty((self.member_count, self.length), dtype=np.float64)
            row = 0
            for group in self.groups:
                for ref in group.members:
                    matrix[row] = dataset.values(ref)
                    row += 1
            self.member_matrix = matrix
        return self.member_matrix


class OnexBase:
    """The compact ONEX base over one dataset."""

    def __init__(self, dataset: TimeSeriesDataset, config: BuildConfig) -> None:
        if len(dataset) == 0:
            raise DatasetError("cannot build a base over an empty dataset")
        self._config = config
        self._raw_dataset = dataset
        self._norm_bounds = dataset.global_bounds() if config.normalize else None
        self._dataset = dataset.normalized() if config.normalize else dataset
        self._buckets: dict[int, LengthBucket] = {}
        self._stats: BaseStats | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self) -> BaseStats:
        """Run the offline clustering; idempotent (rebuilds from scratch)."""
        started = time.perf_counter()
        self._buckets = {}
        total_subsequences = 0
        total_groups = 0
        cfg = self._config
        for length in range(cfg.min_length, cfg.max_length + 1):
            matrix, refs = self._dataset.subsequence_matrix(length, step=cfg.step)
            if not refs:
                continue
            groups = cluster_subsequences(matrix, refs, cfg.group_radius)
            # Gather every group's member values from the already-stacked
            # subsequence matrix into the bucket's refinement matrix.
            row_of = {ref: k for k, ref in enumerate(refs)}
            member_rows = [row_of[m] for g in groups for m in g.members]
            bucket = LengthBucket(length, groups, matrix[member_rows])
            self._buckets[length] = bucket
            total_subsequences += len(refs)
            total_groups += bucket.group_count
        if not self._buckets:
            raise DatasetError(
                "no subsequences in the configured length range "
                f"[{cfg.min_length}, {cfg.max_length}]"
            )
        self._stats = BaseStats(
            subsequences=total_subsequences,
            groups=total_groups,
            lengths=len(self._buckets),
            build_seconds=time.perf_counter() - started,
        )
        return self._stats

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def config(self) -> BuildConfig:
        return self._config

    @property
    def dataset(self) -> TimeSeriesDataset:
        """The (normalised, when configured) dataset the base indexes."""
        return self._dataset

    @property
    def raw_dataset(self) -> TimeSeriesDataset:
        """The dataset exactly as loaded, before normalisation."""
        return self._raw_dataset

    @property
    def normalization_bounds(self) -> tuple[float, float] | None:
        """The (lo, hi) captured at build time, or None when unnormalised.

        Queries must map raw values with *these* bounds — not the current
        dataset extremes, which :meth:`add_series` may have widened.
        """
        return self._norm_bounds

    @property
    def is_built(self) -> bool:
        return bool(self._buckets)

    @property
    def stats(self) -> BaseStats:
        if self._stats is None:
            raise NotBuiltError("base not built yet; call build()")
        return self._stats

    @property
    def lengths(self) -> list[int]:
        """Indexed subsequence lengths, ascending."""
        self._require_built()
        return sorted(self._buckets)

    def bucket(self, length: int) -> LengthBucket:
        self._require_built()
        try:
            return self._buckets[length]
        except KeyError:
            raise DatasetError(
                f"length {length} not indexed (available: "
                f"{self.lengths[0]}..{self.lengths[-1]})"
            ) from None

    def buckets(self) -> list[LengthBucket]:
        self._require_built()
        return [self._buckets[length] for length in self.lengths]

    def group(self, length: int, index: int) -> SimilarityGroup:
        bucket = self.bucket(length)
        if not 0 <= index < bucket.group_count:
            raise DatasetError(
                f"group index {index} out of range for length {length}"
            )
        return bucket.groups[index]

    def member_values(self, ref: SubsequenceRef) -> np.ndarray:
        """Resolve a member handle against the indexed dataset."""
        return self._dataset.values(ref)

    def validate(self) -> None:
        """Re-check every group invariant (slow; used by tests/debugging)."""
        self._require_built()
        for bucket in self.buckets():
            for group in bucket.groups:
                group.validate(self._dataset, self._config.group_radius)

    def _require_built(self) -> None:
        if not self._buckets:
            raise NotBuiltError("base not built yet; call build()")

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------

    def add_series(self, series) -> dict:
        """Index one new series into the built base without a rebuild.

        New windows are assigned with **fixed** representatives: a window
        joins the nearest existing group when it sits within the
        construction radius of that group's centroid (which is *not*
        moved, so every existing member's guarantee is untouched and the
        new member's holds by the assignment test); otherwise it seeds a
        new singleton group.  Radii are updated exactly.  Compared to a
        full rebuild this can only produce extra groups, never invariant
        violations — ``validate()`` passes afterwards.

        Values are normalised with the bounds captured at build time, so
        distances remain comparable with the existing base; a series
        exceeding those bounds maps outside [0, 1] (documented, allowed).

        Returns a summary dict (windows indexed, groups joined/created).
        """
        from dataclasses import replace

        from repro.data.timeseries import TimeSeries

        self._require_built()
        if not isinstance(series, TimeSeries):
            raise ValidationError(
                f"expected TimeSeries, got {type(series).__name__}"
            )
        if series.name in self._raw_dataset:
            raise DatasetError(f"duplicate series name: {series.name!r}")
        self._raw_dataset.add(series)
        if self._norm_bounds is not None:
            lo, hi = self._norm_bounds
            normalized = series.with_values(
                minmax_normalize(series.values, lo=lo, hi=hi)
            )
            self._dataset.add(normalized)
        series_index = self._dataset.index_of(series.name)

        cfg = self._config
        radius = cfg.group_radius
        windows = 0
        joined = 0
        created = 0
        values = self._dataset[series_index].values
        for length in range(cfg.min_length, cfg.max_length + 1):
            if len(series) < length:
                continue
            starts = range(0, len(series) - length + 1, cfg.step)
            rows = [values[s : s + length] for s in starts]
            if not rows:
                continue
            bucket = self._buckets.get(length)
            groups = list(bucket.groups) if bucket is not None else []
            centroids = bucket.centroids if bucket is not None else np.empty((0, length))
            for start, row in zip(starts, rows):
                windows += 1
                ref = SubsequenceRef(series_index, start, length)
                g_idx = -1
                best = np.inf
                if centroids.shape[0]:
                    dists = np.abs(centroids - row).mean(axis=1)
                    g_idx = int(np.argmin(dists))
                    best = float(dists[g_idx])
                if g_idx >= 0 and best <= radius:
                    group = groups[g_idx]
                    deviation = np.abs(row - group.centroid)
                    groups[g_idx] = replace(
                        group,
                        members=group.members + (ref,),
                        ed_radius=max(group.ed_radius, float(deviation.mean())),
                        cheb_radius=max(group.cheb_radius, float(deviation.max())),
                    )
                    joined += 1
                else:
                    groups.append(
                        SimilarityGroup(
                            length=length,
                            centroid=row.copy(),
                            members=(ref,),
                            ed_radius=0.0,
                            cheb_radius=0.0,
                        )
                    )
                    centroids = np.vstack([centroids, row[None, :]])
                    created += 1
            # Leave the member matrix unset: rebuilding it here would
            # re-gather every existing member on each add_series call.
            # The first consumer (query refinement or save) builds it
            # once via ensure_member_matrix.
            self._buckets[length] = LengthBucket(length, groups)

        old = self.stats
        self._stats = BaseStats(
            subsequences=old.subsequences + windows,
            groups=old.groups + created,
            lengths=len(self._buckets),
            build_seconds=old.build_seconds,
        )
        return {
            "series": series.name,
            "windows": windows,
            "joined_existing_groups": joined,
            "new_groups": created,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Serialise the built base to a single ``.npz`` file.

        Stores config, group centroids, radii, member handles, and the
        stacked per-length member-value matrices (``len{n}_member_matrix``,
        rows ordered group by group as ``len{n}_offsets`` delimits) so a
        loaded base can refine groups batched without re-gathering values.
        The dataset itself is not stored; :meth:`load` re-attaches to an
        equal dataset and rebuilds the matrices when loading an archive
        from before they were persisted.
        """
        self._require_built()
        path = Path(path)
        payload: dict[str, np.ndarray] = {}
        meta = {
            "config": {
                "similarity_threshold": self._config.similarity_threshold,
                "min_length": self._config.min_length,
                "max_length": self._config.max_length,
                "step": self._config.step,
                "normalize": self._config.normalize,
            },
            "stats": {
                "subsequences": self.stats.subsequences,
                "groups": self.stats.groups,
                "lengths": self.stats.lengths,
                "build_seconds": self.stats.build_seconds,
            },
            "dataset_fingerprint": self._fingerprint(),
            "lengths": self.lengths,
            "norm_bounds": list(self._norm_bounds) if self._norm_bounds else None,
        }
        payload["meta"] = np.array(json.dumps(meta))
        for length in self.lengths:
            bucket = self._buckets[length]
            prefix = f"len{length}"
            payload[f"{prefix}_centroids"] = bucket.centroids
            payload[f"{prefix}_ed_radii"] = bucket.ed_radii
            payload[f"{prefix}_cheb_radii"] = bucket.cheb_radii
            offsets = [0]
            members = []
            for g in bucket.groups:
                members.extend((m.series_index, m.start) for m in g.members)
                offsets.append(len(members))
            payload[f"{prefix}_members"] = np.array(members, dtype=np.int64)
            payload[f"{prefix}_offsets"] = np.array(offsets, dtype=np.int64)
            payload[f"{prefix}_member_matrix"] = bucket.ensure_member_matrix(
                self._dataset
            )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path, dataset: TimeSeriesDataset) -> "OnexBase":
        """Load a saved base and attach it to *dataset*.

        The dataset must be the one the base was built from (checked with a
        content fingerprint) — the base stores member *handles*, not values.
        """
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            config = BuildConfig(**meta["config"])
            base = cls(dataset, config)
            saved_bounds = meta.get("norm_bounds")
            if saved_bounds is not None and tuple(saved_bounds) != base._norm_bounds:
                # The saved base was normalised with earlier bounds (e.g.
                # add_series widened the collection afterwards); reproduce
                # exactly the value space it was built in.
                lo, hi = saved_bounds
                base._norm_bounds = (lo, hi)
                renormalized = TimeSeriesDataset(name=dataset.name)
                for s in dataset:
                    renormalized.add(
                        s.with_values(minmax_normalize(s.values, lo=lo, hi=hi))
                    )
                base._dataset = renormalized
            if base._fingerprint() != meta["dataset_fingerprint"]:
                raise DatasetError(
                    "dataset does not match the one this base was built from"
                )
            for length in meta["lengths"]:
                prefix = f"len{length}"
                centroids = archive[f"{prefix}_centroids"]
                ed_radii = archive[f"{prefix}_ed_radii"]
                cheb_radii = archive[f"{prefix}_cheb_radii"]
                members = archive[f"{prefix}_members"]
                offsets = archive[f"{prefix}_offsets"]
                groups = []
                for g in range(len(offsets) - 1):
                    chunk = members[offsets[g] : offsets[g + 1]]
                    refs = tuple(
                        SubsequenceRef(int(si), int(st), int(length))
                        for si, st in chunk
                    )
                    groups.append(
                        SimilarityGroup(
                            length=int(length),
                            centroid=centroids[g],
                            members=refs,
                            ed_radius=float(ed_radii[g]),
                            cheb_radius=float(cheb_radii[g]),
                        )
                    )
                matrix_key = f"{prefix}_member_matrix"
                member_matrix = (
                    archive[matrix_key] if matrix_key in archive.files else None
                )
                bucket = LengthBucket(int(length), groups, member_matrix)
                bucket.ensure_member_matrix(base._dataset)
                base._buckets[int(length)] = bucket
        stats = meta["stats"]
        base._stats = BaseStats(
            subsequences=stats["subsequences"],
            groups=stats["groups"],
            lengths=stats["lengths"],
            build_seconds=stats["build_seconds"],
        )
        return base

    def _fingerprint(self) -> str:
        """Cheap content hash binding a saved base to its dataset."""
        import hashlib

        digest = hashlib.sha256()
        for series in self._dataset:
            digest.update(series.name.encode())
            digest.update(np.ascontiguousarray(series.values).tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        if not self._buckets:
            return "OnexBase(unbuilt)"
        return (
            f"OnexBase(lengths={self.lengths[0]}..{self.lengths[-1]}, "
            f"groups={self.stats.groups}, "
            f"compaction={self.stats.compaction_ratio:.1f}x)"
        )
