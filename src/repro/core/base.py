"""The ONEX base: compact, Euclidean-prepared index of similarity groups.

Offline phase (§3.1 / Fig. 1 top): every subsequence of the loaded
collection within the configured length range is clustered, per length,
into similarity groups using the cheap ``ED_n`` distance.  The base keeps
only the group representatives (centroids), radii, and member handles —
typically orders of magnitude fewer representatives than raw subsequences,
which is what makes DTW-based online exploration interactive.

The base can be persisted with :meth:`OnexBase.save` and reattached to the
same dataset with :meth:`OnexBase.load`, mirroring the demo's server-side
preprocessing-on-load workflow.
"""

from __future__ import annotations

import json
import os
import time
import zipfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import persist
from repro.core.config import BuildConfig
from repro.core.deadline import Deadline
from repro.core.grouping import SimilarityGroup, cluster_subsequence_rows
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.windows import (
    rows_to_series_starts,
    window_counts,
    window_matrix,
    window_view,
)
from repro.distances.envelope import keogh_envelope_batch
from repro.distances.lower_bounds import lb_keogh_reverse_batch, lb_kim_endpoints_batch
from repro.distances.normalize import minmax_normalize
from repro.exceptions import (
    BuildWorkerError,
    DatasetError,
    NotBuiltError,
    PersistenceError,
    ReadOnlyBaseError,
    ValidationError,
)
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

_LOG = get_logger("build")

# Registry-backed build telemetry: per-build LengthBuildStats stay the
# per-call view; these accumulate across every build in the process.
_BUILDS_TOTAL = REGISTRY.counter(
    "onex_builds_total", "Completed base constructions"
)
_BUILD_WINDOWS = REGISTRY.counter(
    "onex_build_windows_total", "Subsequence windows indexed by builds"
)
_BUILD_GROUPS = REGISTRY.counter(
    "onex_build_groups_total", "Similarity groups created by builds"
)
_BUILD_SECONDS = REGISTRY.counter(
    "onex_build_seconds_total", "Wall seconds spent in base construction"
)
_BUILD_RETRIES = REGISTRY.counter(
    "onex_build_shard_retries_total",
    "Build shards re-run serially after a pool-worker crash",
)
_BUILD_LAST = REGISTRY.gauge(
    "onex_build_last_seconds", "Duration of the most recent base build"
)

__all__ = [
    "BaseStats",
    "LengthBucket",
    "LengthBuildStats",
    "OnexBase",
    "RepresentativeSummary",
    "WindowAssignment",
    "default_envelope_radius",
]

#: ``.npz`` layout version written by :meth:`OnexBase.save`.  Version 2
#: added the stacked member-value matrices (PR 1); version 3 adds the
#: persisted representative summaries (centroid Keogh envelopes, endpoint
#: and min/max summaries); version 4 adds a content checksum over every
#: stored array, verified on load; version 5 adds the dataset channel
#: count (multivariate bases store channel-flattened rows of width
#: ``length * channels``).  :meth:`OnexBase.load` accepts any older
#: archive and rebuilds (or skips verifying) the missing pieces — a v4
#: univariate archive loads unchanged with ``channels == 1``.
FORMAT_VERSION = 5


def _checksum_arrays(named_arrays) -> str:
    """sha256 over ``(key, array)`` pairs — the archive content checksum.

    Covers key, shape, and raw bytes of every stored array, so bit flips
    the zip layer's per-entry CRC happens to miss (or a tampered,
    re-zipped archive) still surface as a checksum mismatch on load.
    """
    import hashlib

    digest = hashlib.sha256()
    for key, arr in named_arrays:
        digest.update(key.encode())
        digest.update(str(arr.shape).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def default_envelope_radius(length: int) -> int:
    """Persisted centroid-envelope radius for one subsequence length.

    Roughly a 10% Sakoe–Chiba band (the classic warping-window regime),
    never below 1 so the envelope is strictly wider than the centroid and
    never beyond ``length - 1`` (full warping).  Queries whose effective
    band fits inside this radius use the persisted envelopes; wider or
    unconstrained bands fall back to the per-centroid min/max band, which
    bounds DTW at any radius.
    """
    return max(1, min(length - 1, length // 10))


@dataclass(frozen=True)
class LengthBuildStats:
    """Construction telemetry for one subsequence length.

    ``seconds`` is the wall-clock cost of that length's shard (extraction
    + clustering), measured inside the job — on the worker when the build
    is fanned out, so the per-length numbers expose the shard balance the
    scheduler achieved.  Lengths indexed after the build by incremental
    ingestion report ``seconds == 0.0``.
    """

    length: int
    subsequences: int
    groups: int
    seconds: float

    def as_dict(self) -> dict:
        return {
            "length": self.length,
            "subsequences": self.subsequences,
            "groups": self.groups,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class BaseStats:
    """Construction summary (reported by E1/E7/E18 benchmarks)."""

    subsequences: int
    groups: int
    lengths: int
    build_seconds: float
    per_length: tuple[LengthBuildStats, ...] = ()

    @property
    def compaction_ratio(self) -> float:
        """Raw subsequences per representative — the data-reduction factor."""
        return self.subsequences / self.groups if self.groups else float("nan")


@dataclass(frozen=True)
class WindowAssignment:
    """One newly indexed window and where it landed.

    ``distance`` is the ``ED_n`` to the assigned group's representative
    (0.0 when the window seeded a new group).  The streaming monitors use
    these records as their group-level prefilter input.
    """

    ref: SubsequenceRef
    group_index: int
    distance: float
    created: bool


def _grown(
    array: np.ndarray, used: int, minimum: int = 16, needed: int = 0
) -> np.ndarray:
    """Return *array* reallocated to at least twice *used* rows.

    The shared amortised-doubling step of the growable stores (bucket
    stacks here, stream buffers in :mod:`repro.stream.buffer`); the first
    *used* rows are preserved, the rest left uninitialised.  *needed*
    raises the floor when one append must fit more than double.
    """
    capacity = max(minimum, 2 * used, needed)
    grown = np.empty((capacity,) + array.shape[1:], dtype=np.float64)
    grown[:used] = array[:used]
    return grown


class RepresentativeSummary:
    """Prunable summaries of one bucket's representatives, stacked.

    Three cheap-to-evaluate stand-ins for each group centroid, used by the
    representative-layer cascade to lower-bound ``DTW(query, centroid)``
    without running the DTW kernel:

    - ``endpoints`` — ``(G, 4)`` first/second/penultimate/last values
      feeding the constant-time LB_Kim bound;
    - ``env_lo`` / ``env_hi`` — ``(G, length)`` Keogh envelopes at a fixed
      ``radius`` (:func:`default_envelope_radius`), valid whenever the
      query's effective DTW band fits inside that radius;
    - ``minmax`` — ``(G, 2)`` per-centroid global min/max, the radius-∞
      envelope that bounds DTW at *any* band including unconstrained.

    The stores grow by amortised doubling exactly like the bucket's
    centroid stack (representatives never move, so rows never need
    recomputation), are persisted in the ``.npz`` archive, and are shared
    read-only by concurrent queries.
    """

    def __init__(
        self, length: int, radius: int | None = None, width: int | None = None
    ) -> None:
        self.length = length
        self.radius = default_envelope_radius(length) if radius is None else int(radius)
        #: Stored row width — ``length`` for univariate buckets,
        #: ``length * channels`` for channel-flattened multivariate rows
        #: (the summaries then bound the flattened-row geometry, which the
        #: DTW cascade never consults; only the metric scan serves
        #: multivariate buckets).
        self.width = length if width is None else int(width)
        self._count = 0
        cap = LengthBucket._MIN_CAPACITY
        self._env_lo = np.empty((cap, self.width), dtype=np.float64)
        self._env_hi = np.empty((cap, self.width), dtype=np.float64)
        self._endpoints = np.empty((cap, 4), dtype=np.float64)
        self._minmax = np.empty((cap, 2), dtype=np.float64)

    @classmethod
    def attached(
        cls,
        length: int,
        radius: int,
        env_lo: np.ndarray,
        env_hi: np.ndarray,
        endpoints: np.ndarray,
        minmax: np.ndarray,
    ) -> "RepresentativeSummary":
        """Adopt persisted summary arrays *without copying them*.

        The zero-copy sibling of the ``_grown``-based load path: the
        stores are the given arrays themselves (capacity == count), so
        mmap-backed arrays stay mmap-backed.  Only valid for read-only
        bases — the first ``extend`` would try to write the stores in
        place (and raise on a write-protected mmap).
        """
        self = object.__new__(cls)
        self.length = int(length)
        self.radius = int(radius)
        self.width = int(env_lo.shape[1])
        self._env_lo = env_lo
        self._env_hi = env_hi
        self._endpoints = endpoints
        self._minmax = minmax
        self._count = int(env_lo.shape[0])
        return self

    @property
    def count(self) -> int:
        return self._count

    @property
    def env_lo(self) -> np.ndarray:
        return self._env_lo[: self._count]

    @property
    def env_hi(self) -> np.ndarray:
        return self._env_hi[: self._count]

    @property
    def endpoints(self) -> np.ndarray:
        return self._endpoints[: self._count]

    @property
    def minmax(self) -> np.ndarray:
        return self._minmax[: self._count]

    def extend(self, centroids: np.ndarray) -> None:
        """Append summaries for freshly added centroid rows."""
        rows = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
        fresh = rows.shape[0]
        if not fresh:
            return
        needed = self._count + fresh
        if needed > self._env_lo.shape[0]:
            self._env_lo = _grown(self._env_lo, self._count, needed=needed)
            self._env_hi = _grown(self._env_hi, self._count, needed=needed)
            self._endpoints = _grown(self._endpoints, self._count, needed=needed)
            self._minmax = _grown(self._minmax, self._count, needed=needed)
        lo, hi = keogh_envelope_batch(rows, self.radius)
        sl = slice(self._count, needed)
        self._env_lo[sl] = lo
        self._env_hi[sl] = hi
        self._endpoints[sl] = rows[:, [0, 1, -2, -1]]
        self._minmax[sl, 0] = rows.min(axis=1)
        self._minmax[sl, 1] = rows.max(axis=1)
        self._count = needed

    def cheap_bounds(
        self, query: np.ndarray, band: int | None, start: int = 0
    ) -> np.ndarray:
        """Per-representative lower bounds on raw ``DTW(query, centroid)``.

        The tightest applicable combination of LB_Kim (endpoints, any
        lengths) and a Keogh-style envelope bound: the persisted envelopes
        when the query has the bucket length and its effective *band* fits
        inside ``self.radius``, else the min/max band (valid at any band
        width and for unequal lengths).  *start* restricts the evaluation
        to representatives ``start:`` (the streaming monitors extend their
        caches incrementally as ingestion spawns groups).
        """
        if start >= self._count:
            return np.empty(0)
        bound = lb_kim_endpoints_batch(
            query, self._endpoints[start : self._count], self.length
        )
        if query.shape[0] == self.length and band is not None and band <= self.radius:
            lo = self._env_lo[start : self._count]
            hi = self._env_hi[start : self._count]
        else:
            lo = self._minmax[start : self._count, :1]
            hi = self._minmax[start : self._count, 1:]
        return np.maximum(bound, lb_keogh_reverse_batch(query, lo, hi))

    def cheap_bounds_multi(
        self, queries: np.ndarray, band: int | None
    ) -> np.ndarray:
        """:meth:`cheap_bounds` for a stack of equal-length queries at once.

        *queries* is ``(Q, n)``; returns ``(Q, G)`` — row ``i`` equals
        ``cheap_bounds(queries[i], band)``.  One broadcasted evaluation
        replaces ``Q`` per-query calls; the multi-query planner uses this
        so the bound stage costs one numpy dispatch per (bucket, query
        length) instead of per query.
        """
        qs = np.asarray(queries, dtype=np.float64)
        if qs.ndim != 2:
            raise ValidationError(f"queries must be 2-D, got shape {qs.shape}")
        if self._count == 0:
            return np.empty((qs.shape[0], 0))
        kim = lb_kim_endpoints_batch(qs, self._endpoints[: self._count], self.length)
        if qs.shape[1] == self.length and band is not None and band <= self.radius:
            lo = self._env_lo[: self._count]
            hi = self._env_hi[: self._count]
        else:
            lo = self._minmax[: self._count, :1]
            hi = self._minmax[: self._count, 1:]
        return np.maximum(kim, lb_keogh_reverse_batch(qs, lo, hi))


class LengthBucket:
    """All similarity groups for one subsequence length.

    Keeps the group centroids stacked in one matrix so the query processor
    can evaluate cheap bounds against every representative of a length in
    a single vectorised operation.  The member *values* are stacked the
    same way: ``member_matrix`` holds every member of every group as one
    2-D array.  This is what lets the query processor refine a whole group
    — lower-bound cascade and batched DTW — without resolving members one
    at a time.

    Both the centroid stack and the member stack are *growable*: incremental
    ingestion (``OnexBase.add_series`` and the :mod:`repro.stream`
    subsystem) appends rows in place with amortised doubling instead of
    re-gathering every member.  At build/load time each group's rows are
    one contiguous slice of ``member_matrix``; rows appended later land at
    the end of the matrix, so a group's rows are tracked as either a
    ``slice`` (the common contiguous case, returned without a copy) or an
    explicit row-index list.
    """

    #: Initial row capacity of the growable stacks.
    _MIN_CAPACITY = 16

    def __init__(
        self,
        length: int,
        groups: list[SimilarityGroup],
        member_matrix: np.ndarray | None = None,
        stacks: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        channels: int = 1,
    ) -> None:
        self.length = length
        #: Channels per time step; multivariate buckets store every row
        #: channel-flattened (C-order ``(length, channels)``, width
        #: ``length * channels``) so clustering, radii, and persistence
        #: are identical to the univariate layout.
        self.channels = int(channels)
        self.groups = list(groups)
        count = len(self.groups)
        cap = max(self._MIN_CAPACITY, count)
        width = length * self.channels
        self._centroid_store = np.empty((cap, width), dtype=np.float64)
        self._ed_store = np.empty(cap, dtype=np.float64)
        self._cheb_store = np.empty(cap, dtype=np.float64)
        if stacks is not None:
            # Already-stacked (centroids, ed_radii, cheb_radii) matching
            # *groups* — the build pipeline hands its shard arrays over
            # so a many-group bucket skips the per-group copy loop.
            self._centroid_store[:count] = stacks[0]
            self._ed_store[:count] = stacks[1]
            self._cheb_store[:count] = stacks[2]
        else:
            for g, group in enumerate(self.groups):
                self._centroid_store[g] = group.centroid
                self._ed_store[g] = group.ed_radius
                self._cheb_store[g] = group.cheb_radius
        offsets = np.cumsum([0] + [g.cardinality for g in self.groups])
        # Per-group physical rows of the member store: a slice while the
        # group's rows are contiguous, else a list of row indices.
        self._rows: list[slice | list[int]] = [
            slice(int(offsets[g]), int(offsets[g + 1])) for g in range(count)
        ]
        self._row_count = int(offsets[-1])
        # Representative summaries (envelopes/endpoints/minmax) are built
        # lazily on first use and kept in sync by append_group; load()
        # attaches the persisted arrays instead.
        self._rep_summary: RepresentativeSummary | None = None
        if member_matrix is not None:
            expected = (self._row_count, width)
            if member_matrix.shape != expected:
                raise ValidationError(
                    f"member matrix shape {member_matrix.shape} != {expected}"
                )
            # Take ownership: appends only ever write past the current row
            # count (after reallocating when capacity is exhausted).
            self._member_store: np.ndarray | None = np.ascontiguousarray(
                member_matrix, dtype=np.float64
            )
        else:
            self._member_store = None

    @classmethod
    def attached(
        cls,
        length: int,
        groups: list[SimilarityGroup],
        member_matrix: np.ndarray,
        centroids: np.ndarray,
        ed_radii: np.ndarray,
        cheb_radii: np.ndarray,
        channels: int = 1,
    ) -> "LengthBucket":
        """Adopt already-stacked stores *without copying them*.

        The zero-copy sibling of ``__init__``: the centroid/radius/member
        stores are the given arrays themselves (capacity == count), so
        mmap-backed arrays stay mmap-backed and N worker processes share
        one page-cache copy.  Appends remain safe — the very first one
        finds the store full and reallocates through ``_grown``, which
        copies into a fresh private array — but a read-only base never
        appends (its mutation paths are gated upstream).
        """
        self = object.__new__(cls)
        self.length = int(length)
        self.channels = int(channels)
        self.groups = list(groups)
        count = len(self.groups)
        width = self.length * self.channels
        if centroids.shape != (count, width):
            raise ValidationError(
                f"centroid stack shape {centroids.shape} != {(count, width)}"
            )
        self._centroid_store = centroids
        self._ed_store = ed_radii
        self._cheb_store = cheb_radii
        offsets = np.cumsum([0] + [g.cardinality for g in self.groups])
        self._rows = [
            slice(int(offsets[g]), int(offsets[g + 1])) for g in range(count)
        ]
        self._row_count = int(offsets[-1])
        self._rep_summary = None
        expected = (self._row_count, width)
        if member_matrix.shape != expected:
            raise ValidationError(
                f"member matrix shape {member_matrix.shape} != {expected}"
            )
        self._member_store = member_matrix
        return self

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def member_count(self) -> int:
        return self._row_count

    @property
    def centroids(self) -> np.ndarray:
        """Stacked group representatives (live view; do not mutate)."""
        return self._centroid_store[: len(self.groups)]

    @property
    def ed_radii(self) -> np.ndarray:
        """Per-group max ``ED_n(member, representative)`` (live view)."""
        return self._ed_store[: len(self.groups)]

    @property
    def cheb_radii(self) -> np.ndarray:
        """Per-group Chebyshev radius feeding the transfer bounds (view)."""
        return self._cheb_store[: len(self.groups)]

    @property
    def rep_summary(self) -> RepresentativeSummary:
        """Prunable representative summaries, built lazily and kept live.

        Always in sync with the current group count.  Appends extend the
        summary in place under the callers' exclusive (write-side) lock;
        this accessor, which concurrent *readers* share, never mutates an
        already-published summary — when out of sync (first touch, or a
        pre-v3 archive) it builds a complete replacement locally and
        publishes it with one assignment, so racing readers at worst
        build twice and last-write-wins with an equivalent object.
        """
        summary = self._rep_summary
        if summary is None or summary.count < len(self.groups):
            fresh = RepresentativeSummary(
                self.length,
                summary.radius if summary is not None else None,
                width=self._centroid_store.shape[1],
            )
            fresh.extend(self.centroids)
            self._rep_summary = summary = fresh
        return summary

    def attach_rep_summary(self, summary: RepresentativeSummary) -> None:
        """Adopt persisted representative summaries (see ``OnexBase.load``)."""
        if summary.count != len(self.groups):
            raise ValidationError(
                f"representative summary covers {summary.count} groups, "
                f"bucket has {len(self.groups)}"
            )
        self._rep_summary = summary

    @property
    def member_offsets(self) -> np.ndarray:
        """Cumulative member counts delimiting groups in logical order."""
        return np.cumsum([0] + [g.cardinality for g in self.groups], dtype=np.int64)

    @property
    def member_matrix(self) -> np.ndarray | None:
        """Every member's values as one 2-D array (live view), or None.

        Row order is group-contiguous right after ``build()``/``load()``;
        rows appended by incremental ingestion live at the end, in arrival
        order — resolve a group's rows with :meth:`member_rows`, and use
        :meth:`stacked_member_matrix` where group-contiguous order matters.
        """
        if self._member_store is None:
            return None
        return self._member_store[: self._row_count]

    def member_rows(self, g_idx: int) -> np.ndarray:
        """Values of group *g_idx*'s members, ordered as its ``members``.

        A contiguous slice (no copy) while the group has no interleaved
        appends — always the case at build/load time — else a gathered
        copy of the group's rows.
        """
        if self._member_store is None:
            raise NotBuiltError("member matrix not attached to this bucket")
        rows = self._rows[g_idx]
        if isinstance(rows, slice):
            return self._member_store[rows]
        return self._member_store[np.fromiter(rows, np.int64, len(rows))]

    def ensure_member_matrix(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Build (once) and return the stacked member-value matrix.

        Rows are gathered through the strided extraction kernel — one
        :func:`~repro.data.windows.window_view` per touched series with a
        fancy-indexed start gather — instead of resolving members one
        ``dataset.values`` call at a time (only relevant when loading a
        pre-v2 archive that carries no persisted matrix).
        """
        if self._member_store is None:
            refs = [ref for group in self.groups for ref in group.members]
            width = self.length * self.channels
            matrix = np.empty((self._row_count, width), dtype=np.float64)
            series = np.fromiter(
                (r.series_index for r in refs), np.int64, len(refs)
            )
            starts = np.fromiter((r.start for r in refs), np.int64, len(refs))
            for si in np.unique(series).tolist():
                rows = np.nonzero(series == si)[0]
                windows = window_view(dataset[si].values, self.length)
                matrix[rows] = windows[starts[rows]].reshape(rows.shape[0], -1)
            self._member_store = matrix
        return self._member_store[: self._row_count]

    def stacked_member_matrix(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Member values in group-contiguous order (for persistence).

        Returns the store itself (no copy) while every group is still a
        contiguous ascending slice; after interleaved appends the rows are
        gathered group by group.
        """
        self.ensure_member_matrix(dataset)
        expected = 0
        for rows in self._rows:
            if not isinstance(rows, slice) or rows.start != expected:
                return np.vstack(
                    [self.member_rows(g) for g in range(len(self.groups))]
                )
            expected = rows.stop
        return self._member_store[: self._row_count]

    # ------------------------------------------------------------------
    # Incremental growth (amortised-doubling appends)
    # ------------------------------------------------------------------

    def append_member(self, g_idx: int, ref: SubsequenceRef, values: np.ndarray) -> None:
        """Add one member to group *g_idx*, growing the stores in place."""
        self.append_members(g_idx, [ref], values[None, :])

    def append_members(
        self, g_idx: int, refs: list[SubsequenceRef], rows: np.ndarray
    ) -> None:
        """Add a batch of members to group *g_idx*, growing in place.

        The caller guarantees the construction invariant (``ED_n`` to the
        representative within the group radius); radii are updated exactly
        and the representative is **not** moved, so existing members'
        guarantees are untouched.  One batch costs a single rebuild of the
        group's members tuple, so callers assigning many windows at once
        (``add_series``, a chunked stream append) stay linear.
        """
        from dataclasses import replace

        group = self.groups[g_idx]
        deviations = np.abs(rows - group.centroid)
        self.groups[g_idx] = replace(
            group,
            members=group.members + tuple(refs),
            ed_radius=max(group.ed_radius, float(deviations.mean(axis=1).max())),
            cheb_radius=max(group.cheb_radius, float(deviations.max())),
        )
        self._ed_store[g_idx] = self.groups[g_idx].ed_radius
        self._cheb_store[g_idx] = self.groups[g_idx].cheb_radius
        for row in rows:
            phys = self._append_row(row)
            existing = self._rows[g_idx]
            if isinstance(existing, slice):
                if existing.stop == phys:  # still contiguous (newest group)
                    self._rows[g_idx] = slice(existing.start, phys + 1)
                else:
                    self._rows[g_idx] = list(range(existing.start, existing.stop)) + [phys]
            else:
                existing.append(phys)

    def append_group(self, group: SimilarityGroup, values: np.ndarray) -> int:
        """Add a new (singleton) group seeded by *values*; returns its index."""
        g_idx = len(self.groups)
        if g_idx == self._centroid_store.shape[0]:
            self._centroid_store = _grown(self._centroid_store, g_idx)
            self._ed_store = _grown(self._ed_store, g_idx)
            self._cheb_store = _grown(self._cheb_store, g_idx)
        self._centroid_store[g_idx] = group.centroid
        self._ed_store[g_idx] = group.ed_radius
        self._cheb_store[g_idx] = group.cheb_radius
        self.groups.append(group)
        if self._rep_summary is not None and self._rep_summary.count == g_idx:
            # Keep the prunable summaries live under streaming appends;
            # centroids never move, so existing rows stay valid.
            self._rep_summary.extend(group.centroid[None, :])
        phys = self._append_row(values)
        self._rows.append(slice(phys, phys + 1))
        return g_idx

    def _append_row(self, values: np.ndarray) -> int:
        """Append one row to the member store (doubling); returns its index."""
        if self._member_store is None:
            raise NotBuiltError("member matrix not attached to this bucket")
        if self._row_count == self._member_store.shape[0]:
            self._member_store = _grown(self._member_store, self._row_count)
        self._member_store[self._row_count] = values
        self._row_count += 1
        return self._row_count - 1


def _build_length_shard(
    series_values: list[np.ndarray],
    length: int,
    step: int,
    group_radius: float,
    keep_matrix: bool = True,
) -> dict | None:
    """Build one length's groups from raw series values (shared-nothing).

    The unit of work of the sharded build pipeline: strided window
    extraction plus the batched clustering, returning a payload of plain
    arrays — stacked centroids, radii, and flat member-row indices with
    group offsets — so the result pickles cheaply across a
    :class:`~concurrent.futures.ProcessPoolExecutor` boundary.  No handle
    objects are created here; the parent resolves rows to
    :class:`SubsequenceRef`\\ s arithmetically during reassembly.  The
    window matrix rides along only for in-process callers
    (*keep_matrix*); worker processes drop it — re-extracting on the
    parent is cheaper than pickling it through the result pipe.  Returns
    ``None`` when no series is long enough for *length*.
    """
    started = time.perf_counter()
    faults.fire("build.shard", length=length)
    matrix, _ = window_matrix(series_values, length, step)
    if matrix.shape[0] == 0:
        return None
    groups = cluster_subsequence_rows(matrix, group_radius)
    count = len(groups)
    centroids = np.empty((count, matrix.shape[1]), dtype=np.float64)
    offsets = np.empty(count + 1, dtype=np.int64)
    offsets[0] = 0
    for g, group in enumerate(groups):
        centroids[g] = group.centroid
        offsets[g + 1] = offsets[g] + group.rows.shape[0]
    return {
        "length": length,
        "windows": matrix.shape[0],
        "matrix": matrix if keep_matrix else None,
        "centroids": centroids,
        "ed_radii": np.fromiter((g.ed_radius for g in groups), np.float64, count),
        "cheb_radii": np.fromiter(
            (g.cheb_radius for g in groups), np.float64, count
        ),
        "member_rows": np.concatenate([g.rows for g in groups]),
        "offsets": offsets,
        "seconds": time.perf_counter() - started,
    }


class OnexBase:
    """The compact ONEX base over one dataset."""

    def __init__(self, dataset: TimeSeriesDataset, config: BuildConfig) -> None:
        if len(dataset) == 0:
            raise DatasetError("cannot build a base over an empty dataset")
        self._config = config
        self._raw_dataset = dataset
        self._norm_bounds = dataset.global_bounds() if config.normalize else None
        self._dataset = dataset.normalized() if config.normalize else dataset
        self._buckets: dict[int, LengthBucket] = {}
        self._stats: BaseStats | None = None
        #: Shards re-run serially after a worker crash in the last build.
        self.build_shard_retries = 0
        #: True for mmap-attached bases served by pool workers: every
        #: mutation path raises :class:`ReadOnlyBaseError` (writes belong
        #: to the supervisor, which republishes a fresh snapshot).
        self.read_only = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, deadline: Deadline | None = None) -> BaseStats:
        """Run the offline clustering; idempotent (rebuilds from scratch).

        The construction is a sharded pipeline over the configured length
        range: each length is an independent, shared-nothing job
        (:func:`_build_length_shard` — strided extraction plus the batched
        clustering) and ``BuildConfig.num_workers`` fans the jobs over a
        :class:`~concurrent.futures.ProcessPoolExecutor`
        (``build_executor="thread"`` swaps in a thread pool;
        ``num_workers=1`` runs the same jobs in-process with no executor).
        Shard payloads are merged in ascending length order regardless of
        completion order, and the clustering itself is deterministic, so
        every backend produces an identical base —
        :meth:`structure_fingerprint` equality is asserted by the tests
        and the E18 benchmark gate.

        A crashed or killed pool worker loses only its shard: the build
        re-runs that length serially in the parent (determinism makes the
        retry bit-identical; ``build_shard_retries`` counts them) and
        raises :class:`~repro.exceptions.BuildWorkerError` only when the
        serial retry fails too.  A *deadline* is checked between merged
        shards and raises with per-length progress.
        """
        started = time.perf_counter()
        self._buckets = {}
        self.build_shard_retries = 0
        cfg = self._config
        lengths = list(range(cfg.min_length, cfg.max_length + 1))
        series_values = [s.values for s in self._dataset]
        workers = min(cfg.num_workers, len(lengths))
        total_subsequences = 0
        total_groups = 0
        per_length: list[LengthBuildStats] = []

        def merge(payloads) -> None:
            # Consumed lazily and in submission (= ascending length)
            # order, so at most one shard's window matrix is alive on
            # the parent at a time — the serial build's peak memory.
            nonlocal total_subsequences, total_groups
            for payload in payloads:
                faults.fire("build.merge")
                if deadline is not None:
                    deadline.check(
                        "base build",
                        {
                            "lengths_merged": len(per_length),
                            "lengths_total": len(lengths),
                            "groups": total_groups,
                        },
                    )
                if payload is None:
                    continue
                with span(
                    "build.merge_shard",
                    length=payload["length"],
                    windows=payload["windows"],
                ):
                    bucket = self._assemble_bucket(payload)
                self._buckets[bucket.length] = bucket
                total_subsequences += payload["windows"]
                total_groups += bucket.group_count
                per_length.append(
                    LengthBuildStats(
                        length=bucket.length,
                        subsequences=payload["windows"],
                        groups=bucket.group_count,
                        seconds=payload["seconds"],
                    )
                )

        if workers <= 1:
            merge(
                _build_length_shard(series_values, length, cfg.step, cfg.group_radius)
                for length in lengths
            )
        else:
            processes = cfg.build_executor != "thread"
            pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
            with pool_cls(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _build_length_shard,
                        series_values,
                        length,
                        cfg.step,
                        cfg.group_radius,
                        # Worker processes drop the window matrix from
                        # the payload: the parent re-extracts it in one
                        # strided gather instead of paying the pickle.
                        not processes,
                    )
                    for length in lengths
                ]

                def drain():
                    # Still ascending length order — submit-per-shard
                    # (instead of pool.map) is what lets one crashed
                    # worker lose only its own shard.
                    for length, future in zip(lengths, futures):
                        try:
                            yield future.result()
                        except Exception as exc:
                            # A killed worker surfaces as BrokenExecutor
                            # (and poisons every later future of a
                            # process pool); each failed shard re-runs
                            # serially in the parent, bit-identically.
                            self.build_shard_retries += 1
                            _BUILD_RETRIES.inc()
                            log_event(
                                _LOG,
                                "warning",
                                "build.shard_retry",
                                length=length,
                                error=str(exc),
                                error_type=type(exc).__name__,
                            )
                            try:
                                yield _build_length_shard(
                                    series_values,
                                    length,
                                    cfg.step,
                                    cfg.group_radius,
                                )
                            except Exception as retry_exc:
                                raise BuildWorkerError(
                                    f"build shard for length {length} failed "
                                    f"in a pool worker ({exc}) and again on "
                                    "serial retry"
                                ) from retry_exc

                merge(drain())
        if not self._buckets:
            raise DatasetError(
                "no subsequences in the configured length range "
                f"[{cfg.min_length}, {cfg.max_length}]"
            )
        build_seconds = time.perf_counter() - started
        self._stats = BaseStats(
            subsequences=total_subsequences,
            groups=total_groups,
            lengths=len(self._buckets),
            build_seconds=build_seconds,
            per_length=tuple(per_length),
        )
        _BUILDS_TOTAL.inc()
        _BUILD_WINDOWS.inc(total_subsequences)
        _BUILD_GROUPS.inc(total_groups)
        _BUILD_SECONDS.inc(build_seconds)
        _BUILD_LAST.set(build_seconds)
        return self._stats

    def _assemble_bucket(self, payload: dict) -> LengthBucket:
        """Reassemble one shard payload into a live :class:`LengthBucket`.

        Runs on the parent: member rows are resolved to
        :class:`SubsequenceRef` handles with one ``searchsorted`` over the
        per-series window counts, the groups are rebuilt from the stacked
        arrays, and the bucket's refinement matrix is gathered from the
        shard's window matrix.  Bit-identical to what an in-process build
        of the same length produces (the payload arrays round-trip
        through pickle exactly).
        """
        length = payload["length"]
        step = self._config.step
        matrix = payload["matrix"]
        if matrix is None:
            matrix, _ = window_matrix(
                [s.values for s in self._dataset], length, step
            )
        counts = window_counts(
            [len(s) for s in self._dataset], length, step
        )
        member_rows = payload["member_rows"]
        series_idx, starts = rows_to_series_starts(member_rows, counts, step)
        refs = list(
            map(
                SubsequenceRef,
                series_idx.tolist(),
                starts.tolist(),
                [length] * member_rows.shape[0],
            )
        )
        offsets = payload["offsets"].tolist()
        centroids = payload["centroids"]
        ed_radii = payload["ed_radii"].tolist()
        cheb_radii = payload["cheb_radii"].tolist()
        groups = [
            SimilarityGroup(
                length=length,
                centroid=centroids[g],
                members=tuple(refs[offsets[g] : offsets[g + 1]]),
                ed_radius=ed_radii[g],
                cheb_radius=cheb_radii[g],
            )
            for g in range(len(offsets) - 1)
        ]
        return LengthBucket(
            length,
            groups,
            matrix[member_rows],
            stacks=(centroids, payload["ed_radii"], payload["cheb_radii"]),
            channels=self._dataset.channels,
        )

    @classmethod
    def from_attached(
        cls,
        raw_dataset: TimeSeriesDataset,
        norm_dataset: TimeSeriesDataset,
        config: BuildConfig,
        norm_bounds: tuple[float, float] | None,
        buckets: dict[int, LengthBucket],
        stats: "BaseStats",
        *,
        read_only: bool = False,
    ) -> "OnexBase":
        """Assemble a built base from pre-attached parts, copying nothing.

        The mmap snapshot loader's constructor: unlike ``__init__`` it
        does not renormalise the dataset (*norm_dataset* is handed in,
        typically wrapping the snapshot's own normalised arrays), so an
        entirely mmap-backed base touches no series values at open time.
        """
        self = object.__new__(cls)
        self._config = config
        self._raw_dataset = raw_dataset
        self._norm_bounds = norm_bounds
        self._dataset = norm_dataset
        self._buckets = dict(buckets)
        self._stats = stats
        self.build_shard_retries = 0
        self.read_only = read_only
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def config(self) -> BuildConfig:
        return self._config

    @property
    def dataset(self) -> TimeSeriesDataset:
        """The (normalised, when configured) dataset the base indexes."""
        return self._dataset

    @property
    def raw_dataset(self) -> TimeSeriesDataset:
        """The dataset exactly as loaded, before normalisation."""
        return self._raw_dataset

    @property
    def normalization_bounds(self) -> tuple[float, float] | None:
        """The (lo, hi) captured at build time, or None when unnormalised.

        Queries must map raw values with *these* bounds — not the current
        dataset extremes, which :meth:`add_series` may have widened.
        """
        return self._norm_bounds

    @property
    def channels(self) -> int:
        """Channels per time step of the indexed dataset (1 = univariate)."""
        return self._dataset.channels

    @property
    def is_built(self) -> bool:
        return bool(self._buckets)

    @property
    def stats(self) -> BaseStats:
        if self._stats is None:
            raise NotBuiltError("base not built yet; call build()")
        return self._stats

    @property
    def lengths(self) -> list[int]:
        """Indexed subsequence lengths, ascending."""
        self._require_built()
        return sorted(self._buckets)

    def bucket(self, length: int) -> LengthBucket:
        self._require_built()
        try:
            return self._buckets[length]
        except KeyError:
            raise DatasetError(
                f"length {length} not indexed (available: "
                f"{self.lengths[0]}..{self.lengths[-1]})"
            ) from None

    def buckets(self) -> list[LengthBucket]:
        self._require_built()
        return [self._buckets[length] for length in self.lengths]

    def group(self, length: int, index: int) -> SimilarityGroup:
        bucket = self.bucket(length)
        if not 0 <= index < bucket.group_count:
            raise DatasetError(
                f"group index {index} out of range for length {length}"
            )
        return bucket.groups[index]

    def member_values(self, ref: SubsequenceRef) -> np.ndarray:
        """Resolve a member handle against the indexed dataset."""
        return self._dataset.values(ref)

    def validate(self) -> None:
        """Re-check every group invariant (slow; used by tests/debugging)."""
        self._require_built()
        for bucket in self.buckets():
            for group in bucket.groups:
                group.validate(self._dataset, self._config.group_radius)

    def _require_built(self) -> None:
        if not self._buckets:
            raise NotBuiltError("base not built yet; call build()")

    def _require_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyBaseError(
                f"base over {self._raw_dataset.name!r} is read-only "
                "(mmap-attached); mutations belong to the supervisor"
            )

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------

    def add_series(self, series) -> dict:
        """Index one new series into the built base without a rebuild.

        New windows are assigned with **fixed** representatives: a window
        joins the nearest existing group when it sits within the
        construction radius of that group's centroid (which is *not*
        moved, so every existing member's guarantee is untouched and the
        new member's holds by the assignment test); otherwise it seeds a
        new singleton group.  Radii are updated exactly.  Compared to a
        full rebuild this can only produce extra groups, never invariant
        violations — ``validate()`` passes afterwards.  Member rows are
        appended to each bucket's stacked member matrix in place, so the
        series is queryable through the batched cascade immediately, with
        no re-gather of existing members.

        Values are normalised with the bounds captured at build time, so
        distances remain comparable with the existing base; a series
        exceeding those bounds maps outside [0, 1] (documented, allowed).

        Returns a summary dict (windows indexed, groups joined/created).
        """
        from repro.data.timeseries import TimeSeries

        self._require_built()
        self._require_writable()
        if not isinstance(series, TimeSeries):
            raise ValidationError(
                f"expected TimeSeries, got {type(series).__name__}"
            )
        if series.name in self._raw_dataset:
            raise DatasetError(f"duplicate series name: {series.name!r}")
        self._raw_dataset.add(series)
        if self._norm_bounds is not None:
            lo, hi = self._norm_bounds
            normalized = series.with_values(
                minmax_normalize(series.values, lo=lo, hi=hi)
            )
            self._dataset.add(normalized)
        series_index = self._dataset.index_of(series.name)
        assignments = self.index_new_windows(series_index, 0)
        created = sum(a.created for a in assignments)
        return {
            "series": series.name,
            "windows": len(assignments),
            "joined_existing_groups": len(assignments) - created,
            "new_groups": created,
        }

    def index_new_windows(
        self, series_index: int, previous_length: int
    ) -> list[WindowAssignment]:
        """Index every window of series *series_index* completed by growth
        beyond *previous_length* points (0 indexes the whole series).

        The incremental-ingestion kernel shared by :meth:`add_series` and
        the streaming ingestor: new windows are batch-evaluated against
        the bucket's stacked centroid matrix (one chunked ``ED_n`` kernel
        per length, as in the offline builder) and appended to their
        groups — or seeded as new singleton groups — in place.  Returns
        one :class:`WindowAssignment` per indexed window, in (length,
        start) order; stats are updated to match.
        """
        self._require_built()
        self._require_writable()
        cfg = self._config
        values = self._dataset[series_index].values
        n = values.shape[0]
        out: list[WindowAssignment] = []
        for length in range(cfg.min_length, min(cfg.max_length, n) + 1):
            # Windows already indexed have starts <= previous_length - length
            # on the step grid; resume from the next grid point.
            first = max(0, previous_length - length + 1)
            first = -(-first // cfg.step) * cfg.step
            starts = range(first, n - length + 1, cfg.step)
            if not starts:
                continue
            bucket = self._buckets.get(length)
            if bucket is None:
                bucket = LengthBucket(
                    length,
                    [],
                    np.empty((0, length * self.channels)),
                    channels=self.channels,
                )
                self._buckets[length] = bucket
            out.extend(
                self._assign_windows(bucket, series_index, starts, values)
            )
        if out:
            created = sum(a.created for a in out)
            old = self.stats
            per_length = {s.length: s for s in old.per_length}
            for a in out:
                prev = per_length.get(a.ref.length)
                per_length[a.ref.length] = LengthBuildStats(
                    length=a.ref.length,
                    subsequences=(prev.subsequences if prev else 0) + 1,
                    groups=(prev.groups if prev else 0) + int(a.created),
                    seconds=prev.seconds if prev else 0.0,
                )
            self._stats = BaseStats(
                subsequences=old.subsequences + len(out),
                groups=old.groups + created,
                lengths=len(self._buckets),
                build_seconds=old.build_seconds,
                per_length=tuple(
                    per_length[length] for length in sorted(per_length)
                ),
            )
        return out

    #: Windows per row block and centroid columns per chunk of the batched
    #: assignment — together they bound the distance temporaries at
    #: block x groups and block x chunk x length, mirroring the offline
    #: builder's ``_ASSIGN_BLOCK`` / ``_CHUNK_COLS``.
    _ASSIGN_BLOCK = 128
    _ASSIGN_CHUNK = 128

    def _assign_windows(
        self,
        bucket: LengthBucket,
        series_index: int,
        starts: range,
        values: np.ndarray,
    ) -> list[WindowAssignment]:
        """Assign same-length windows to *bucket* with fixed representatives.

        Windows are processed in row blocks, each batch-evaluated against
        the centroid table as of block start; groups seeded mid-block are
        candidates for the block's remaining windows via an incremental
        scan (ties keep the lowest group index, as one combined argmin
        over all centroids would).  Joins are buffered and applied per
        group at the end — one members-tuple rebuild per touched group per
        call — while creates take effect immediately so later windows can
        join them.
        """
        length = bucket.length
        radius = self._config.group_radius
        windows = window_view(values, length)[
            starts.start : starts.stop : starts.step
        ]
        count = windows.shape[0]
        if windows.ndim == 3:
            # Channel-flatten multivariate windows to the stored row layout.
            windows = windows.reshape(count, -1)
        bucket.ensure_member_matrix(self._dataset)
        out: list[WindowAssignment] = []
        joins: dict[int, list[int]] = {}
        for b0 in range(0, count, self._ASSIGN_BLOCK):
            block = windows[b0 : b0 + self._ASSIGN_BLOCK]
            nb = block.shape[0]
            existing = bucket.group_count
            if existing:
                dists = np.empty((nb, existing))
                centroids = bucket.centroids
                for c0 in range(0, existing, self._ASSIGN_CHUNK):
                    c1 = min(existing, c0 + self._ASSIGN_CHUNK)
                    dists[:, c0:c1] = np.abs(
                        block[:, None, :] - centroids[None, c0:c1, :]
                    ).mean(axis=2)
                best_idx = np.argmin(dists, axis=1)
                best = dists[np.arange(nb), best_idx]
            else:
                best_idx = np.zeros(nb, dtype=np.int64)
                best = np.full(nb, np.inf)
            for bi in range(nb):
                w = b0 + bi
                row = windows[w]
                g_idx, dist = int(best_idx[bi]), float(best[bi])
                if bucket.group_count > existing:
                    fresh = bucket.centroids[existing:]
                    fresh_d = np.abs(fresh - row).mean(axis=1)
                    f_idx = int(np.argmin(fresh_d))
                    if float(fresh_d[f_idx]) < dist:
                        g_idx, dist = existing + f_idx, float(fresh_d[f_idx])
                ref = SubsequenceRef(series_index, starts[w], length)
                if dist <= radius:
                    joins.setdefault(g_idx, []).append(w)
                    out.append(WindowAssignment(ref, g_idx, dist, created=False))
                else:
                    g_idx = bucket.append_group(
                        SimilarityGroup(
                            length=length,
                            centroid=row.copy(),
                            members=(ref,),
                            ed_radius=0.0,
                            cheb_radius=0.0,
                        ),
                        row,
                    )
                    out.append(WindowAssignment(ref, g_idx, 0.0, created=True))
        for g_idx, indices in joins.items():
            bucket.append_members(
                g_idx,
                [SubsequenceRef(series_index, starts[w], length) for w in indices],
                windows[indices],
            )
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Serialise the built base to a single ``.npz`` file, atomically.

        Stores config, group centroids, radii, member handles, and the
        stacked per-length member-value matrices (``len{n}_member_matrix``,
        rows ordered group by group as ``len{n}_offsets`` delimits) so a
        loaded base can refine groups batched without re-gathering values.
        The dataset itself is not stored; :meth:`load` re-attaches to an
        equal dataset and rebuilds the matrices when loading an archive
        from before they were persisted.

        The archive is written to a same-directory temp file, fsynced,
        and renamed into place — a crash mid-save never clobbers a
        previously saved base.  A sha256 checksum over every stored array
        rides in the metadata and is verified by :meth:`load`.
        """
        self._require_built()
        path = Path(path)
        if not path.name.endswith(".npz"):
            # np.savez appends the suffix when handed a filename; writing
            # through a file object (for the atomic rename) must match.
            path = Path(str(path) + ".npz")
        payload: dict[str, np.ndarray] = {}
        meta = {
            "format_version": FORMAT_VERSION,
            "config": {
                "similarity_threshold": self._config.similarity_threshold,
                "min_length": self._config.min_length,
                "max_length": self._config.max_length,
                "step": self._config.step,
                "normalize": self._config.normalize,
            },
            "stats": {
                "subsequences": self.stats.subsequences,
                "groups": self.stats.groups,
                "lengths": self.stats.lengths,
                "build_seconds": self.stats.build_seconds,
                "per_length": [s.as_dict() for s in self.stats.per_length],
            },
            "dataset_fingerprint": self._fingerprint(),
            "lengths": self.lengths,
            "norm_bounds": list(self._norm_bounds) if self._norm_bounds else None,
            "channels": self.channels,
        }
        for length in self.lengths:
            bucket = self._buckets[length]
            prefix = f"len{length}"
            payload[f"{prefix}_centroids"] = bucket.centroids
            payload[f"{prefix}_ed_radii"] = bucket.ed_radii
            payload[f"{prefix}_cheb_radii"] = bucket.cheb_radii
            offsets = [0]
            members = []
            for g in bucket.groups:
                members.extend((m.series_index, m.start) for m in g.members)
                offsets.append(len(members))
            payload[f"{prefix}_members"] = np.array(members, dtype=np.int64)
            payload[f"{prefix}_offsets"] = np.array(offsets, dtype=np.int64)
            payload[f"{prefix}_member_matrix"] = bucket.stacked_member_matrix(
                self._dataset
            )
            # Format v3: the representative-layer prune summaries, so a
            # loaded base answers its first query with zero preparation.
            summary = bucket.rep_summary
            payload[f"{prefix}_rep_env_lo"] = summary.env_lo
            payload[f"{prefix}_rep_env_hi"] = summary.env_hi
            payload[f"{prefix}_rep_endpoints"] = summary.endpoints
            payload[f"{prefix}_rep_minmax"] = summary.minmax
            payload[f"{prefix}_rep_env_radius"] = np.array(
                summary.radius, dtype=np.int64
            )
        meta["content_checksum"] = _checksum_arrays(sorted(payload.items()))
        payload["meta"] = np.array(json.dumps(meta))
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
                fh.flush()
                os.fsync(fh.fileno())
            faults.fire("persist.save", path=str(tmp))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # The rename is atomic but not yet durable: the directory entry
        # lives in the page cache until the directory itself is fsynced,
        # so a power cut here could resurrect the pre-save archive.
        faults.fire("persist.rename", path=str(path))
        persist.fsync_dir(path.parent)

    @classmethod
    def load(cls, path, dataset: TimeSeriesDataset) -> "OnexBase":
        """Load a saved base and attach it to *dataset*.

        The dataset must be the one the base was built from (checked with a
        content fingerprint) — the base stores member *handles*, not values.

        A truncated, tampered, or otherwise unreadable archive raises
        :class:`~repro.exceptions.PersistenceError` (wrapping the varied
        zipfile/numpy error surface); v4 archives additionally verify the
        stored content checksum.  A missing file stays
        ``FileNotFoundError``.
        """
        path = Path(path)
        try:
            return cls._load_archive(path, dataset)
        except FileNotFoundError:
            raise
        except (DatasetError, PersistenceError):
            raise
        except (
            zipfile.BadZipFile,
            EOFError,
            OSError,
            ValueError,
            KeyError,
            TypeError,
        ) as exc:
            raise PersistenceError(
                f"corrupt or unreadable base archive {path}: {exc}"
            ) from exc

    @classmethod
    def _load_archive(cls, path: Path, dataset: TimeSeriesDataset) -> "OnexBase":
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            stored_checksum = meta.get("content_checksum")
            if stored_checksum is not None:
                actual = _checksum_arrays(
                    (key, archive[key])
                    for key in sorted(archive.files)
                    if key != "meta"
                )
                if actual != stored_checksum:
                    raise PersistenceError(
                        f"base archive {path} failed its content checksum "
                        "(truncated or tampered with)"
                    )
            config = BuildConfig(**meta["config"])
            base = cls(dataset, config)
            # Pre-v5 archives are always univariate; v5 stores the count.
            channels = int(meta.get("channels", 1))
            if dataset.channels != channels:
                raise DatasetError(
                    f"base was built over {channels}-channel series, "
                    f"dataset has {dataset.channels}"
                )
            saved_bounds = meta.get("norm_bounds")
            if saved_bounds is not None and tuple(saved_bounds) != base._norm_bounds:
                # The saved base was normalised with earlier bounds (e.g.
                # add_series widened the collection afterwards); reproduce
                # exactly the value space it was built in.
                lo, hi = saved_bounds
                base._norm_bounds = (lo, hi)
                renormalized = TimeSeriesDataset(name=dataset.name)
                for s in dataset:
                    renormalized.add(
                        s.with_values(minmax_normalize(s.values, lo=lo, hi=hi))
                    )
                base._dataset = renormalized
            if base._fingerprint() != meta["dataset_fingerprint"]:
                raise DatasetError(
                    "dataset does not match the one this base was built from"
                )
            for length in meta["lengths"]:
                prefix = f"len{length}"
                centroids = archive[f"{prefix}_centroids"]
                ed_radii = archive[f"{prefix}_ed_radii"]
                cheb_radii = archive[f"{prefix}_cheb_radii"]
                members = archive[f"{prefix}_members"]
                offsets = archive[f"{prefix}_offsets"]
                groups = []
                for g in range(len(offsets) - 1):
                    chunk = members[offsets[g] : offsets[g + 1]]
                    refs = tuple(
                        SubsequenceRef(int(si), int(st), int(length))
                        for si, st in chunk
                    )
                    groups.append(
                        SimilarityGroup(
                            length=int(length),
                            centroid=centroids[g],
                            members=refs,
                            ed_radius=float(ed_radii[g]),
                            cheb_radius=float(cheb_radii[g]),
                        )
                    )
                matrix_key = f"{prefix}_member_matrix"
                member_matrix = (
                    archive[matrix_key] if matrix_key in archive.files else None
                )
                bucket = LengthBucket(
                    int(length), groups, member_matrix, channels=channels
                )
                bucket.ensure_member_matrix(base._dataset)
                env_key = f"{prefix}_rep_env_lo"
                if env_key in archive.files:
                    summary = RepresentativeSummary(
                        int(length),
                        int(archive[f"{prefix}_rep_env_radius"]),
                        width=int(length) * channels,
                    )
                    count = len(groups)
                    cap = max(LengthBucket._MIN_CAPACITY, count)
                    summary._env_lo = _grown(archive[env_key], count, cap)
                    summary._env_hi = _grown(archive[f"{prefix}_rep_env_hi"], count, cap)
                    summary._endpoints = _grown(
                        archive[f"{prefix}_rep_endpoints"], count, cap
                    )
                    summary._minmax = _grown(archive[f"{prefix}_rep_minmax"], count, cap)
                    summary._count = count
                    bucket.attach_rep_summary(summary)
                # Pre-v3 archives carry no summaries: rep_summary rebuilds
                # them lazily from the centroids on first use.
                base._buckets[int(length)] = bucket
        stats = meta["stats"]
        base._stats = BaseStats(
            subsequences=stats["subsequences"],
            groups=stats["groups"],
            lengths=stats["lengths"],
            build_seconds=stats["build_seconds"],
            per_length=tuple(
                LengthBuildStats(**entry)
                for entry in stats.get("per_length", ())
            ),
        )
        return base

    def _fingerprint(self) -> str:
        """Cheap content hash binding a saved base to its dataset."""
        import hashlib

        digest = hashlib.sha256()
        for series in self._dataset:
            digest.update(series.name.encode())
            digest.update(np.ascontiguousarray(series.values).tobytes())
        return digest.hexdigest()

    def structure_fingerprint(self) -> str:
        """Content hash of the built structure (groups, radii, members).

        Covers, per ascending length: the stacked centroid matrix, both
        radius vectors, the group member offsets, and every member's
        ``(series_index, start)`` handle — everything the query layers
        read, nothing timing-dependent.  Two bases are result-identical
        iff their structure fingerprints match; the build scheduler's
        determinism gate (serial vs thread-pool vs process-pool builds,
        E18 and ``run_all.py``) compares these.
        """
        import hashlib

        self._require_built()
        digest = hashlib.sha256()
        for length in self.lengths:
            bucket = self._buckets[length]
            digest.update(np.int64(length).tobytes())
            digest.update(np.ascontiguousarray(bucket.centroids).tobytes())
            digest.update(np.ascontiguousarray(bucket.ed_radii).tobytes())
            digest.update(np.ascontiguousarray(bucket.cheb_radii).tobytes())
            digest.update(bucket.member_offsets.tobytes())
            members = np.array(
                [
                    (m.series_index, m.start)
                    for g in bucket.groups
                    for m in g.members
                ],
                dtype=np.int64,
            )
            digest.update(members.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        if not self._buckets:
            return "OnexBase(unbuilt)"
        return (
            f"OnexBase(lengths={self.lengths[0]}..{self.lengths[-1]}, "
            f"groups={self.stats.groups}, "
            f"compaction={self.stats.compaction_ratio:.1f}x)"
        )
