"""Cooperative deadlines and cancellation for long-running operations.

ONEX never preempts: every expensive loop the engine runs — the geometric
representative-DTW chunks and member refinements in
:mod:`repro.core.query`, the condensed-pair chunks in
:mod:`repro.core.seasonal` and :mod:`repro.core.sensitivity`, the
per-length build shards in :mod:`repro.core.base`, and the monitor step
loop in :mod:`repro.stream` — already advances in bounded chunks, so a
:class:`Deadline` checked at those chunk boundaries bounds how far past
its budget any operation can run by one chunk of work.

A deadline combines a wall-clock budget with an optional
:class:`CancellationToken` (an explicit kill switch callers can flip from
another thread).  ``check()`` raises
:class:`~repro.exceptions.DeadlineExceeded` once either fires; with
``allow_partial=True`` the query layer instead degrades gracefully,
returning its best verified candidate flagged ``exact=False``.

Checks are pure control flow: a query that finishes inside its budget is
bit-identical to the same query with no deadline at all (property-tested
in ``tests/test_deadline.py`` and gated in ``benchmarks/run_all.py``).
"""

from __future__ import annotations

import math
import threading
import time

from repro.exceptions import DeadlineExceeded, ValidationError

__all__ = ["CancellationToken", "Deadline"]


class CancellationToken:
    """A thread-safe, one-way cancellation flag.

    ``cancel()`` may be called from any thread (e.g. a server shutdown
    path aborting in-flight work); the operation observes it at its next
    chunk boundary.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self.cancelled})"


class Deadline:
    """A wall-clock budget plus optional cancellation, checked cooperatively.

    *timeout_ms* is the budget from the moment of construction (``None``
    means unbounded — the deadline then only observes its *token*).
    *allow_partial* asks the operations that support degradation (the
    k-best search family, seasonal mining) to return their best verified
    partial result instead of raising when the budget fires.
    """

    __slots__ = ("_expires_at", "allow_partial", "timeout_ms", "token")

    def __init__(
        self,
        timeout_ms: float | None = None,
        *,
        allow_partial: bool = False,
        token: CancellationToken | None = None,
    ) -> None:
        if timeout_ms is not None:
            if isinstance(timeout_ms, bool) or not isinstance(
                timeout_ms, (int, float)
            ):
                raise ValidationError(
                    f"timeout_ms must be a number, got {type(timeout_ms).__name__}"
                )
            if not (timeout_ms > 0 and math.isfinite(timeout_ms)):
                raise ValidationError(
                    f"timeout_ms must be positive and finite, got {timeout_ms}"
                )
        self.timeout_ms = float(timeout_ms) if timeout_ms is not None else None
        self._expires_at = (
            time.monotonic() + self.timeout_ms / 1000.0
            if self.timeout_ms is not None
            else None
        )
        self.allow_partial = bool(allow_partial)
        self.token = token

    @classmethod
    def after(
        cls,
        timeout_ms: float,
        *,
        allow_partial: bool = False,
        token: CancellationToken | None = None,
    ) -> "Deadline":
        """A deadline expiring *timeout_ms* from now."""
        return cls(timeout_ms, allow_partial=allow_partial, token=token)

    def remaining_ms(self) -> float:
        """Milliseconds left in the budget (``inf`` when unbounded)."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, (self._expires_at - time.monotonic()) * 1000.0)

    @property
    def expired(self) -> bool:
        """Whether the budget ran out or the token was cancelled."""
        if self.token is not None and self.token.cancelled:
            return True
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def check(self, stage: str = "", progress: dict | None = None) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has fired.

        Called at chunk boundaries; *stage* names the boundary and
        *progress* snapshots the work done so far, both reported on the
        raised error so callers see how far the operation got.
        """
        if self.token is not None and self.token.cancelled:
            raise DeadlineExceeded(
                f"operation cancelled{f' during {stage}' if stage else ''}",
                stage=stage or None,
                progress=progress,
            )
        if self._expires_at is not None and time.monotonic() >= self._expires_at:
            raise DeadlineExceeded(
                f"deadline of {self.timeout_ms:g} ms exceeded"
                f"{f' during {stage}' if stage else ''}",
                stage=stage or None,
                progress=progress,
            )

    def __repr__(self) -> str:
        budget = f"{self.timeout_ms:g}ms" if self.timeout_ms is not None else "none"
        return (
            f"Deadline(timeout={budget}, remaining={self.remaining_ms():.1f}ms, "
            f"allow_partial={self.allow_partial})"
        )
