"""Parameter-sensitivity exploration (§2: "showing the changes in the
similarity between sequences for varying parameters").

Analysts rarely know the right similarity threshold up front; the demo
lets them see how the answer set changes as ``ST`` varies.  Recomputing a
range query per candidate threshold would be wasteful, so ONEX exploits
its own machinery: one batched DTW pass over the group representatives
yields, via the transfer inequality, a **certain** interval and a
**possible** interval of match counts for *every* threshold at once:

- a member is *certainly* within ``ST`` when its transfer upper bound is
  ``<= ST`` — no member DTW needed;
- a member is *certainly not* within ``ST`` when its group's transfer
  lower bound exceeds ``ST``;
- members between the bounds are ambiguous until verified.

:func:`similarity_profile` returns both count curves over a threshold
grid (plus exact counts when ``verify=True``), which the Similarity View
renders as a sensitivity band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import OnexBase
from repro.data.dataset import SubsequenceRef
from repro.distances.bounds import path_multiplicities
from repro.distances.dtw import dtw_path
from repro.distances.metrics import as_sequence
from repro.distances.normalize import minmax_normalize
from repro.exceptions import ValidationError

__all__ = ["SensitivityPoint", "SensitivityProfile", "similarity_profile"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Match-count information at one candidate threshold."""

    threshold: float
    certain: int
    possible: int
    exact: int | None = None

    def __post_init__(self) -> None:
        if self.certain > self.possible:
            raise ValidationError(
                f"certain ({self.certain}) cannot exceed possible ({self.possible})"
            )
        if self.exact is not None and not self.certain <= self.exact <= self.possible:
            raise ValidationError(
                f"exact ({self.exact}) outside [{self.certain}, {self.possible}]"
            )


@dataclass(frozen=True)
class SensitivityProfile:
    """Match-count curves for one query over a threshold grid."""

    thresholds: tuple[float, ...]
    points: tuple[SensitivityPoint, ...]
    candidates: int

    def knee(self) -> float:
        """The threshold with the largest jump in certain matches.

        A pragmatic "interesting setting" suggestion: below the knee the
        answer set is stable, above it matches flood in.
        """
        counts = [p.certain for p in self.points]
        jumps = np.diff([0] + counts)
        return self.points[int(np.argmax(jumps))].threshold

    def as_dict(self) -> dict:
        return {
            "view": "sensitivity",
            "candidates": self.candidates,
            "thresholds": list(self.thresholds),
            "certain": [p.certain for p in self.points],
            "possible": [p.possible for p in self.points],
            "exact": [p.exact for p in self.points],
            "knee": self.knee(),
        }


def similarity_profile(
    base: OnexBase,
    query,
    thresholds,
    *,
    lengths=None,
    window: int | None = None,
    verify: bool = False,
    normalize: bool = True,
) -> SensitivityProfile:
    """Match-count bounds for *query* across candidate *thresholds*.

    One DTW per group representative (with its warping path) bounds every
    member's normalised DTW from both sides; ``verify=True`` additionally
    resolves the ambiguous members with exact DTW so ``exact`` counts are
    populated (still only touching members the bounds cannot decide).
    """
    grid = tuple(sorted(float(t) for t in thresholds))
    if not grid or grid[0] <= 0:
        raise ValidationError("thresholds must be positive and non-empty")
    q = _resolve_query(base, query, normalize)
    qlen = q.shape[0]

    chosen = base.buckets() if lengths is None else [
        base.bucket(int(n)) for n in sorted(set(lengths))
    ]
    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    members: list[SubsequenceRef] = []
    for bucket in chosen:
        length = bucket.length
        max_path = qlen + length - 1
        min_path = max(qlen, length)
        for group in bucket.groups:
            rep = dtw_path(q, group.centroid, window=window)
            mult = path_multiplicities(rep.path, length, axis=1)
            rows = np.vstack([base.member_values(ref) for ref in group.members])
            diffs = np.abs(rows - group.centroid)
            slack = diffs @ mult  # per-member transfer slack
            cheb = diffs.max(axis=1)
            # Normalised-DTW interval per member (DESIGN.md §2): the raw
            # interval scaled by the extreme feasible path lengths.
            upper = (rep.distance + slack) / min_path
            lower = np.maximum(rep.distance - max_path * cheb, 0.0) / max_path
            lowers.append(lower)
            uppers.append(upper)
            members.extend(group.members)

    lower = np.concatenate(lowers) if lowers else np.empty(0)
    upper = np.concatenate(uppers) if uppers else np.empty(0)

    exact_distance: np.ndarray | None = None
    if verify:
        exact_distance = np.empty(lower.shape[0])
        for i, ref in enumerate(members):
            # Bounds that already agree on every grid threshold need no
            # verification; resolve only genuinely ambiguous members.
            if _decided_everywhere(lower[i], upper[i], grid):
                exact_distance[i] = (lower[i] + upper[i]) / 2.0
            else:
                exact_distance[i] = dtw_path(
                    q, base.member_values(ref), window=window
                ).normalized_distance

    points = []
    for st in grid:
        certain = int((upper <= st).sum())
        possible = int((lower <= st).sum())
        exact = None
        if exact_distance is not None:
            decided = (upper <= st) | (lower > st)
            ambiguous = ~decided
            exact = int(certain + (exact_distance[ambiguous] <= st).sum())
        points.append(
            SensitivityPoint(
                threshold=st, certain=certain, possible=possible, exact=exact
            )
        )
    return SensitivityProfile(
        thresholds=grid, points=tuple(points), candidates=lower.shape[0]
    )


def _decided_everywhere(lo: float, hi: float, grid: tuple[float, ...]) -> bool:
    """True when no grid threshold falls inside the open interval (lo, hi]."""
    return all(hi <= st or lo > st for st in grid)


def _resolve_query(base: OnexBase, query, normalize: bool) -> np.ndarray:
    if isinstance(query, SubsequenceRef):
        return base.dataset.values(query)
    q = as_sequence(query, name="query")
    bounds = base.normalization_bounds
    if normalize and bounds is not None:
        q = minmax_normalize(q, lo=bounds[0], hi=bounds[1])
    return q
