"""Parameter-sensitivity exploration (§2: "showing the changes in the
similarity between sequences for varying parameters").

Analysts rarely know the right similarity threshold up front; the demo
lets them see how the answer set changes as ``ST`` varies.  Recomputing a
range query per candidate threshold would be wasteful, so ONEX exploits
its own machinery: one batched DTW pass over the group representatives
yields, via the transfer inequality, a **certain** interval and a
**possible** interval of match counts for *every* threshold at once:

- a member is *certainly* within ``ST`` when its transfer upper bound is
  ``<= ST`` — no member DTW needed;
- a member is *certainly not* within ``ST`` when its group's transfer
  lower bound exceeds ``ST``;
- members between the bounds are ambiguous until verified.

The default implementation rides the batched pruning cascade (DESIGN.md
§6): groups whose :class:`~repro.core.base.RepresentativeSummary` cheap
bound already clears the whole grid are skipped without the per-group
``dtw_path``, member rows come straight from the bucket's stacked member
matrix, and ``verify=True`` resolves every still-ambiguous member with an
LB_Kim/LB_Keogh prescreen followed by **one** stacked batch-DTW call per
bucket — where the seed implementation paid one scalar ``dtw_path`` per
ambiguous member.  Counts are identical either way; the scalar twin stays
reachable with ``use_batching=False`` and the property suite cross-checks
them.

:func:`similarity_profile` returns both count curves over a threshold
grid (plus exact counts when ``verify=True``), which the Similarity View
renders as a sensitivity band.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.base import OnexBase
from repro.core.deadline import Deadline
from repro.core.validation import as_optional_int_arg
from repro.data.dataset import SubsequenceRef
from repro.distances.bounds import path_multiplicities
from repro.distances.dtw import dtw_distance_batch, dtw_path, effective_band
from repro.distances.lower_bounds import lb_keogh_batch, lb_kim_batch
from repro.distances.envelope import keogh_envelope
from repro.distances.metrics import as_sequence
from repro.distances.normalize import minmax_normalize
from repro.exceptions import ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

_ANALYTICS_TOTAL = REGISTRY.counter(
    "onex_analytics_total", "Completed analytics operations by op"
)
_ANALYTICS_MS = REGISTRY.histogram(
    "onex_analytics_ms", "Analytics operation wall time (milliseconds)"
)

__all__ = ["SensitivityPoint", "SensitivityProfile", "similarity_profile"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Match-count information at one candidate threshold."""

    threshold: float
    certain: int
    possible: int
    exact: int | None = None

    def __post_init__(self) -> None:
        if self.certain > self.possible:
            raise ValidationError(
                f"certain ({self.certain}) cannot exceed possible ({self.possible})"
            )
        if self.exact is not None and not self.certain <= self.exact <= self.possible:
            raise ValidationError(
                f"exact ({self.exact}) outside [{self.certain}, {self.possible}]"
            )


@dataclass(frozen=True)
class SensitivityProfile:
    """Match-count curves for one query over a threshold grid."""

    thresholds: tuple[float, ...]
    points: tuple[SensitivityPoint, ...]
    candidates: int

    def knee(self) -> float:
        """The threshold with the largest jump in certain matches.

        A pragmatic "interesting setting" suggestion: below the knee the
        answer set is stable, above it matches flood in.
        """
        counts = [p.certain for p in self.points]
        jumps = np.diff([0] + counts)
        return self.points[int(np.argmax(jumps))].threshold

    def as_dict(self) -> dict:
        return {
            "view": "sensitivity",
            "candidates": self.candidates,
            "thresholds": list(self.thresholds),
            "certain": [p.certain for p in self.points],
            "possible": [p.possible for p in self.points],
            "exact": [p.exact for p in self.points],
            "knee": self.knee(),
        }


def similarity_profile(
    base: OnexBase,
    query,
    thresholds,
    *,
    lengths=None,
    window: int | None = None,
    verify: bool = False,
    normalize: bool = True,
    use_batching: bool = True,
    deadline: Deadline | None = None,
) -> SensitivityProfile:
    """Match-count bounds for *query* across candidate *thresholds*.

    One DTW per group representative (with its warping path) bounds every
    member's normalised DTW from both sides; ``verify=True`` additionally
    resolves the ambiguous members with exact DTW so ``exact`` counts are
    populated (still only touching members the bounds cannot decide).
    *use_batching* selects the cascade implementation (the default);
    ``False`` runs the retained scalar path — identical counts, kept for
    ablations and the property-suite cross-check.

    A *deadline* is checked at every length-bucket boundary and always
    raises when it fires: a profile over a subset of buckets would
    silently understate every count, so there is no partial degrade here
    (``allow_partial`` is ignored).
    """
    window = as_optional_int_arg(window, "window")
    grid = tuple(sorted(float(t) for t in thresholds))
    if not grid or grid[0] <= 0:
        raise ValidationError("thresholds must be positive and non-empty")
    q = _resolve_query(base, query, normalize)

    chosen = base.buckets() if lengths is None else [
        base.bucket(int(n)) for n in sorted(set(lengths))
    ]
    started = time.perf_counter()
    with span(
        "sensitivity.profile",
        buckets=len(chosen),
        thresholds=len(grid),
        verify=verify,
    ):
        if use_batching:
            profile = _profile_batched(
                base, q, grid, chosen, window, verify, deadline
            )
        else:
            profile = _profile_scalar(
                base, q, grid, chosen, window, verify, deadline
            )
    _ANALYTICS_TOTAL.inc(op="sensitivity")
    _ANALYTICS_MS.observe(
        (time.perf_counter() - started) * 1000.0, op="sensitivity"
    )
    return profile


def _check_bucket_deadline(
    deadline: Deadline | None, scanned: int, total: int
) -> None:
    """The shared per-bucket chunk boundary of both profile twins."""
    faults.fire("sensitivity.bucket")
    if deadline is not None:
        deadline.check(
            "sensitivity profile",
            {"buckets_scanned": scanned, "buckets_total": total},
        )


def _profile_batched(
    base: OnexBase,
    q: np.ndarray,
    grid: tuple[float, ...],
    chosen: list,
    window: int | None,
    verify: bool,
    deadline: Deadline | None = None,
) -> SensitivityProfile:
    """Cascade implementation: cheap group bounds, stacked member rows,
    and (under ``verify``) one batched member-DTW call per bucket.

    Every shortcut is conservative against the scalar path's own bounds,
    so the emitted counts are identical:

    - a group is skipped (no ``dtw_path``) only when its summary cheap
      bound proves every member's scalar *lower* bound would already
      exceed the whole grid — such members count toward nothing but the
      candidate total either way;
    - an ambiguous member skips exact DTW only when LB_Kim/LB_Keogh over
      the maximal path length proves its distance exceeds the grid — the
      scalar path's exact value would have counted it out at every
      threshold too.
    """
    qlen = q.shape[0]
    grid_arr = np.asarray(grid)
    st_max = grid[-1]
    candidates = 0
    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    verify_units: list[tuple] = []  # (bucket, rows, base offset into arrays)
    offset = 0
    for scanned, bucket in enumerate(chosen):
        _check_bucket_deadline(deadline, scanned, len(chosen))
        length = bucket.length
        candidates += bucket.member_count
        if not bucket.group_count:
            continue
        max_path = qlen + length - 1
        min_path = max(qlen, length)
        bucket.ensure_member_matrix(base.dataset)
        band = effective_band(qlen, length, window)
        cheap = bucket.rep_summary.cheap_bounds(q, band)
        # Conservative against the per-member transfer lower bound: the
        # cheap bound never exceeds DTW(q, rep) and the group Chebyshev
        # radius never understates a member's, so a group failing this
        # test has every member's scalar lower bound above the grid.
        alive = (cheap - max_path * bucket.cheb_radii) / max_path <= st_max
        bucket_rows: list[np.ndarray] = []
        with span(
            "sensitivity.bucket", length=length, groups=int(alive.sum())
        ):
            for g_idx in np.nonzero(alive)[0]:
                group = bucket.groups[int(g_idx)]
                rep = dtw_path(q, group.centroid, window=window)
                mult = path_multiplicities(rep.path, length, axis=1)
                rows = bucket.member_rows(int(g_idx))
                diffs = np.abs(rows - group.centroid)
                slack = diffs @ mult
                cheb = diffs.max(axis=1)
                uppers.append((rep.distance + slack) / min_path)
                lowers.append(
                    np.maximum(rep.distance - max_path * cheb, 0.0) / max_path
                )
                bucket_rows.append(rows)
        if verify and bucket_rows:
            stacked = (
                bucket_rows[0]
                if len(bucket_rows) == 1
                else np.vstack(bucket_rows)
            )
            verify_units.append((bucket, stacked, offset))
            offset += stacked.shape[0]

    lower = np.concatenate(lowers) if lowers else np.empty(0)
    upper = np.concatenate(uppers) if uppers else np.empty(0)

    exact_distance: np.ndarray | None = None
    if verify:
        exact_distance = (lower + upper) / 2.0  # placeholder for decided rows
        # A member needs exact DTW only when some grid threshold st
        # satisfies lower <= st < upper (the negation of the scalar
        # path's "hi <= st or lo > st") — vectorised via two rank
        # lookups per member against the sorted grid.
        ambiguous_any = np.searchsorted(grid_arr, upper, side="left") > (
            np.searchsorted(grid_arr, lower, side="left")
        )
        for scanned, (bucket, rows, start) in enumerate(verify_units):
            _check_bucket_deadline(deadline, scanned, len(verify_units))
            length = bucket.length
            max_path = qlen + length - 1
            sl = slice(start, start + rows.shape[0])
            need = np.nonzero(ambiguous_any[sl])[0]
            if not need.size:
                continue
            need_rows = rows[need]
            # LB prescreen: a bound already above the whole grid (scaled
            # by the maximal path length) proves the member matches at no
            # threshold — exactly what its exact distance would conclude.
            bound = lb_kim_batch(q, need_rows)
            if qlen == length:
                radius = band_radius = effective_band(qlen, length, window)
                if band_radius is None:
                    radius = length - 1
                env_lo, env_hi = keogh_envelope(q, radius)
                bound = np.maximum(bound, lb_keogh_batch(need_rows, env_lo, env_hi))
            decided_out = bound / max_path > st_max
            target = exact_distance[sl]
            target[need[decided_out]] = np.inf
            survivors = need[~decided_out]
            if survivors.size:
                raws, plens = dtw_distance_batch(
                    q, need_rows[~decided_out], window=window, with_path_length=True
                )
                target[survivors] = raws / plens

    points = _points_from_bounds(grid, lower, upper, exact_distance)
    return SensitivityProfile(
        thresholds=grid, points=tuple(points), candidates=candidates
    )


def _profile_scalar(
    base: OnexBase,
    q: np.ndarray,
    grid: tuple[float, ...],
    chosen: list,
    window: int | None,
    verify: bool,
    deadline: Deadline | None = None,
) -> SensitivityProfile:
    """Seed scalar implementation, kept as the cross-check twin."""
    qlen = q.shape[0]
    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    members: list[SubsequenceRef] = []
    for scanned, bucket in enumerate(chosen):
        _check_bucket_deadline(deadline, scanned, len(chosen))
        length = bucket.length
        max_path = qlen + length - 1
        min_path = max(qlen, length)
        for group in bucket.groups:
            rep = dtw_path(q, group.centroid, window=window)
            mult = path_multiplicities(rep.path, length, axis=1)
            rows = np.vstack([base.member_values(ref) for ref in group.members])
            diffs = np.abs(rows - group.centroid)
            slack = diffs @ mult  # per-member transfer slack
            cheb = diffs.max(axis=1)
            # Normalised-DTW interval per member (DESIGN.md §2): the raw
            # interval scaled by the extreme feasible path lengths.
            upper = (rep.distance + slack) / min_path
            lower = np.maximum(rep.distance - max_path * cheb, 0.0) / max_path
            lowers.append(lower)
            uppers.append(upper)
            members.extend(group.members)

    lower = np.concatenate(lowers) if lowers else np.empty(0)
    upper = np.concatenate(uppers) if uppers else np.empty(0)

    exact_distance: np.ndarray | None = None
    if verify:
        exact_distance = np.empty(lower.shape[0])
        for i, ref in enumerate(members):
            # Bounds that already agree on every grid threshold need no
            # verification; resolve only genuinely ambiguous members.
            if _decided_everywhere(lower[i], upper[i], grid):
                exact_distance[i] = (lower[i] + upper[i]) / 2.0
            else:
                exact_distance[i] = dtw_path(
                    q, base.member_values(ref), window=window
                ).normalized_distance

    points = _points_from_bounds(grid, lower, upper, exact_distance)
    return SensitivityProfile(
        thresholds=grid, points=tuple(points), candidates=lower.shape[0]
    )


def _points_from_bounds(
    grid: tuple[float, ...],
    lower: np.ndarray,
    upper: np.ndarray,
    exact_distance: np.ndarray | None,
) -> list[SensitivityPoint]:
    points = []
    for st in grid:
        certain = int((upper <= st).sum())
        possible = int((lower <= st).sum())
        exact = None
        if exact_distance is not None:
            decided = (upper <= st) | (lower > st)
            ambiguous = ~decided
            exact = int(certain + (exact_distance[ambiguous] <= st).sum())
        points.append(
            SensitivityPoint(
                threshold=st, certain=certain, possible=possible, exact=exact
            )
        )
    return points


def _decided_everywhere(lo: float, hi: float, grid: tuple[float, ...]) -> bool:
    """True when no grid threshold falls inside the open interval (lo, hi]."""
    return all(hi <= st or lo > st for st in grid)


def _resolve_query(base: OnexBase, query, normalize: bool) -> np.ndarray:
    if isinstance(query, SubsequenceRef):
        return base.dataset.values(query)
    q = as_sequence(query, name="query")
    bounds = base.normalization_bounds
    if normalize and bounds is not None:
        q = minmax_normalize(q, lo=bounds[0], hi=bounds[1])
    return q
