"""The ONEX engine facade — Fig. 1's architecture as one object.

The engine owns named datasets and their bases (preprocessing layer),
routes exploratory operations to the query processor (middle layer), and
exposes the summaries the visual-analytics layer consumes.  The demo's
client/server module (:mod:`repro.server`) is a thin JSON wrapper around
this class; examples and benchmarks drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import BaseStats, OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import Match, QueryProcessor
from repro.core.seasonal import SeasonalPattern, find_seasonal_patterns
from repro.core.sensitivity import SensitivityProfile, similarity_profile
from repro.core.threshold import ThresholdRecommendation, recommend_thresholds
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.exceptions import DatasetError, ValidationError

__all__ = ["LoadedDataset", "OnexEngine"]


@dataclass
class LoadedDataset:
    """One dataset registered with the engine, plus its built base."""

    dataset: TimeSeriesDataset
    base: OnexBase
    processor: QueryProcessor
    stats: BaseStats


class OnexEngine:
    """Facade over preprocessing, querying, and analytics summaries."""

    def __init__(self, query_config: QueryConfig | None = None) -> None:
        self._query_config = query_config or QueryConfig()
        self._loaded: dict[str, LoadedDataset] = {}

    # ------------------------------------------------------------------
    # Data loading (the demo's "Data Loading into ONEX" step)
    # ------------------------------------------------------------------

    def load_dataset(
        self,
        dataset: TimeSeriesDataset,
        *,
        similarity_threshold: float | None = None,
        min_length: int | None = None,
        max_length: int | None = None,
        step: int = 1,
        normalize: bool = True,
    ) -> BaseStats:
        """Register *dataset* and build its ONEX base.

        When *similarity_threshold* is omitted it is chosen data-driven via
        the threshold recommender at a mid-range subsequence length.  The
        length range defaults to the collection's shortest series length on
        both ends widened down to half of it — a pragmatic default that
        keeps preprocessing proportional to the data.
        """
        if dataset.name in self._loaded:
            raise DatasetError(f"dataset {dataset.name!r} already loaded")
        shortest, _ = dataset.length_range()
        if max_length is None:
            max_length = shortest
        if min_length is None:
            min_length = max(2, max_length // 2)
        if similarity_threshold is None:
            probe = max(2, min(max_length, (min_length + max_length) // 2))
            similarity_threshold = recommend_thresholds(
                dataset, probe, normalize=normalize
            ).default
        config = BuildConfig(
            similarity_threshold=similarity_threshold,
            min_length=min_length,
            max_length=max_length,
            step=step,
            normalize=normalize,
        )
        base = OnexBase(dataset, config)
        stats = base.build()
        self._loaded[dataset.name] = LoadedDataset(
            dataset=dataset,
            base=base,
            processor=QueryProcessor(base, self._query_config),
            stats=stats,
        )
        return stats

    def add_series(self, dataset_name: str, series) -> dict:
        """Index one new series into a loaded dataset incrementally.

        Uses the base's fixed-representative update (invariant-safe, no
        rebuild); the series becomes immediately queryable.
        """
        return self._entry(dataset_name).base.add_series(series)

    def unload_dataset(self, name: str) -> None:
        self._entry(name)
        del self._loaded[name]

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._loaded)

    def base(self, name: str) -> OnexBase:
        return self._entry(name).base

    def stats(self, name: str) -> BaseStats:
        return self._entry(name).stats

    # ------------------------------------------------------------------
    # Exploratory operations (§3.3)
    # ------------------------------------------------------------------

    def best_match(self, dataset_name: str, query, **kwargs) -> Match:
        """Best match for a sample sequence (Fig. 2's similarity search)."""
        return self._entry(dataset_name).processor.best_match(query, **kwargs)

    def k_best_matches(self, dataset_name: str, query, k: int, **kwargs) -> list[Match]:
        return self._entry(dataset_name).processor.k_best_matches(query, k, **kwargs)

    def matches_within(self, dataset_name: str, query, threshold: float, **kwargs) -> list[Match]:
        return self._entry(dataset_name).processor.matches_within(
            query, threshold, **kwargs
        )

    def seasonal_patterns(
        self, dataset_name: str, series_name: str, length: int, threshold: float | None = None, **kwargs
    ) -> list[SeasonalPattern]:
        """Recurring patterns within one series (Fig. 4's Seasonal View)."""
        entry = self._entry(dataset_name)
        if threshold is None:
            threshold = entry.base.config.similarity_threshold
        series = entry.dataset[series_name]
        return find_seasonal_patterns(series, length, threshold, **kwargs)

    def recommend_thresholds(
        self, dataset_name: str, length: int, **kwargs
    ) -> ThresholdRecommendation:
        return recommend_thresholds(self._entry(dataset_name).dataset, length, **kwargs)

    def similarity_profile(
        self, dataset_name: str, query, thresholds, **kwargs
    ) -> SensitivityProfile:
        """Match-count sensitivity across thresholds (§2's "varying
        parameters" exploration)."""
        return similarity_profile(
            self._entry(dataset_name).base, query, thresholds, **kwargs
        )

    # ------------------------------------------------------------------
    # Summaries for the visual layer
    # ------------------------------------------------------------------

    def overview(self, dataset_name: str, *, length: int | None = None, limit: int = 50) -> list[dict]:
        """Overview Pane payload: representatives with group cardinality.

        Groups are sorted by cardinality (the pane's colour intensity) and
        truncated to *limit*; *length* picks one indexed length (default:
        the longest, matching the demo's full-series overview).
        """
        base = self._entry(dataset_name).base
        if length is None:
            length = base.lengths[-1]
        bucket = base.bucket(length)
        ranked = sorted(
            range(bucket.group_count),
            key=lambda g: -bucket.groups[g].cardinality,
        )[:limit]
        return [
            {
                "group": (length, g),
                "cardinality": bucket.groups[g].cardinality,
                "representative": bucket.groups[g].centroid.tolist(),
            }
            for g in ranked
        ]

    def query_from_series(
        self, dataset_name: str, series_name: str, start: int = 0, length: int | None = None
    ) -> SubsequenceRef:
        """Build a query ref by brushing a stored series (Query Preview)."""
        entry = self._entry(dataset_name)
        series = entry.dataset[series_name]
        if length is None:
            length = len(series) - start
        if length < 2:
            raise ValidationError("brushed query must have at least 2 points")
        series.subsequence(start, length)  # validates the window
        return SubsequenceRef(entry.dataset.index_of(series_name), start, length)

    def _entry(self, name: str) -> LoadedDataset:
        try:
            return self._loaded[name]
        except KeyError:
            raise DatasetError(
                f"dataset {name!r} not loaded (loaded: {self.dataset_names})"
            ) from None
