"""The ONEX engine facade — Fig. 1's architecture as one object.

The engine owns named datasets and their bases (preprocessing layer),
routes exploratory operations to the query processor (middle layer), and
exposes the summaries the visual-analytics layer consumes.  The demo's
client/server module (:mod:`repro.server`) is a thin JSON wrapper around
this class; examples and benchmarks drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.base import BaseStats, OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import Match, QueryProcessor
from repro.core.seasonal import SeasonalPattern, find_seasonal_patterns
from repro.core.sensitivity import SensitivityProfile, similarity_profile
from repro.core.threshold import ThresholdRecommendation, recommend_thresholds
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.distances.normalize import minmax_normalize
from repro.exceptions import DatasetError, ValidationError

__all__ = ["LoadedDataset", "OnexEngine"]


@dataclass
class LoadedDataset:
    """One dataset registered with the engine, plus its built base.

    ``ingestor`` is the dataset's streaming write path, created lazily on
    the first streaming operation (:mod:`repro.stream`).
    """

    dataset: TimeSeriesDataset
    base: OnexBase
    processor: QueryProcessor
    stats: BaseStats
    ingestor: object | None = None
    #: Structure fingerprint captured at load time — the determinism
    #: handle surfaced by ``GET /health`` (incremental ingestion after
    #: load intentionally does not refresh it).
    fingerprint: str | None = None
    #: Lazily built processors for per-request metric overrides, keyed by
    #: metric name; ``processor`` stays the default-config one.
    metric_processors: dict = field(default_factory=dict)
    #: The processor that answered the most recent query operation —
    #: what ``last_query_stats`` (and thus ``explain``) reads.
    active_processor: QueryProcessor | None = None


class OnexEngine:
    """Facade over preprocessing, querying, and analytics summaries."""

    def __init__(self, query_config: QueryConfig | None = None) -> None:
        self._query_config = query_config or QueryConfig()
        self._loaded: dict[str, LoadedDataset] = {}

    # ------------------------------------------------------------------
    # Data loading (the demo's "Data Loading into ONEX" step)
    # ------------------------------------------------------------------

    def load_dataset(
        self,
        dataset: TimeSeriesDataset,
        *,
        similarity_threshold: float | None = None,
        min_length: int | None = None,
        max_length: int | None = None,
        step: int = 1,
        normalize: bool = True,
        num_workers: int = 1,
        build_executor: str = "process",
        deadline=None,
    ) -> BaseStats:
        """Register *dataset* and build its ONEX base.

        When *similarity_threshold* is omitted it is chosen data-driven via
        the threshold recommender at a mid-range subsequence length.  The
        length range defaults to the collection's shortest series length on
        both ends widened down to half of it — a pragmatic default that
        keeps preprocessing proportional to the data.

        *num_workers* fans the per-length build shards over a process (or
        thread, per *build_executor*) pool; every setting produces an
        identical base, so it is purely a build-latency knob.  A
        *deadline* (:class:`~repro.core.deadline.Deadline`) bounds the
        build cooperatively, checked between merged shards; when it
        fires, no partially built dataset is registered.
        """
        if dataset.name in self._loaded:
            raise DatasetError(f"dataset {dataset.name!r} already loaded")
        shortest, _ = dataset.length_range()
        if max_length is None:
            max_length = shortest
        if min_length is None:
            min_length = max(2, max_length // 2)
        if similarity_threshold is None:
            probe = max(2, min(max_length, (min_length + max_length) // 2))
            similarity_threshold = recommend_thresholds(
                dataset, probe, normalize=normalize
            ).default
        config = BuildConfig(
            similarity_threshold=similarity_threshold,
            min_length=min_length,
            max_length=max_length,
            step=step,
            normalize=normalize,
            num_workers=num_workers,
            build_executor=build_executor,
        )
        base = OnexBase(dataset, config)
        stats = base.build(deadline)
        self._loaded[dataset.name] = LoadedDataset(
            dataset=dataset,
            base=base,
            processor=QueryProcessor(base, self._query_config),
            stats=stats,
            fingerprint=base.structure_fingerprint(),
        )
        return stats

    def restore_dataset(
        self,
        dataset: TimeSeriesDataset,
        base: OnexBase,
        *,
        monitors=(),
        event_seq: int = 0,
        stream_counters: dict | None = None,
        fingerprint: str | None = None,
    ) -> BaseStats:
        """Register an already-built *base* (checkpoint recovery path).

        Unlike :meth:`load_dataset` nothing is rebuilt: *base* comes from
        :meth:`~repro.core.base.OnexBase.load` against a checkpoint's
        dataset snapshot.  *monitors* / *event_seq* / *stream_counters*
        re-seed the streaming layer from the checkpoint manifest so a
        restarted server continues event numbering monotonically; the
        ingestor is created eagerly whenever any of them is present.
        *fingerprint* supplies a precomputed structure fingerprint —
        pool workers attaching an mmap snapshot pass the stored one so
        registration does not fault every page in just to rehash it.
        """
        if dataset.name in self._loaded:
            raise DatasetError(f"dataset {dataset.name!r} already loaded")
        entry = LoadedDataset(
            dataset=dataset,
            base=base,
            processor=QueryProcessor(base, self._query_config),
            stats=base.stats,
            fingerprint=(
                fingerprint
                if fingerprint is not None
                else base.structure_fingerprint()
            ),
        )
        self._loaded[dataset.name] = entry
        if monitors or event_seq or stream_counters:
            from repro.stream import StreamIngestor

            ingestor = StreamIngestor(base)
            ingestor.registry.restore(monitors, event_seq)
            if stream_counters:
                ingestor.restore_counters(**stream_counters)
            entry.ingestor = ingestor
        return entry.stats

    def add_series(self, dataset_name: str, series) -> dict:
        """Index one new series into a loaded dataset incrementally.

        Uses the base's fixed-representative update (invariant-safe, no
        rebuild); the series becomes immediately queryable.
        """
        return self._entry(dataset_name).base.add_series(series)

    def unload_dataset(self, name: str) -> None:
        self._entry(name)
        del self._loaded[name]

    # ------------------------------------------------------------------
    # Streaming ingestion and live monitoring (repro.stream)
    # ------------------------------------------------------------------

    def stream(self, dataset_name: str):
        """The dataset's :class:`~repro.stream.StreamIngestor` (lazy)."""
        from repro.stream import StreamIngestor

        entry = self._entry(dataset_name)
        if entry.ingestor is None:
            entry.ingestor = StreamIngestor(entry.base)
        return entry.ingestor

    def append_points(
        self, dataset_name: str, series_name: str, values, deadline=None
    ) -> dict:
        """Append live points to a series, indexing completed windows.

        The series is created on first contact; values are raw units,
        normalised with the base's build-time bounds.  Returns the ingest
        summary, including any monitor events the append emitted.
        """
        return self.stream(dataset_name).append_points(series_name, values, deadline)

    def register_monitor(
        self,
        dataset_name: str,
        pattern,
        epsilon: float | None = None,
        *,
        series: str | None = None,
        name: str | None = None,
        normalize: bool = True,
    ) -> dict:
        """Create a standing pattern query over live appends.

        *pattern* is raw-unit values (normalised into the base's value
        space like any query, unless *normalize* is false) or a
        :class:`~repro.data.dataset.SubsequenceRef` into the indexed
        dataset.  *epsilon* is a summed L1 warping cost in that value
        space; omitted, it defaults to the build similarity threshold
        times the maximal warping-path length ``2m - 1`` — the raw-cost
        equivalent of one ONEX similarity threshold at pattern length
        ``m``.  Returns the monitor's description payload.
        """
        entry = self._entry(dataset_name)
        base = entry.base
        if isinstance(pattern, SubsequenceRef):
            values = base.dataset.values(pattern)
        else:
            values = np.asarray([float(v) for v in pattern], dtype=np.float64)
            bounds = base.normalization_bounds
            if normalize and bounds is not None:
                values = minmax_normalize(values, lo=bounds[0], hi=bounds[1])
        if epsilon is None:
            epsilon = base.config.similarity_threshold * (2 * len(values) - 1)
        monitor = self.stream(dataset_name).registry.register(
            values, float(epsilon), series=series, name=name
        )
        return monitor.describe()

    def unregister_monitor(self, dataset_name: str, name: str) -> None:
        """Remove a standing query; pending events stay pollable."""
        registry = self.stream_registry(dataset_name)
        if registry is None:
            raise DatasetError(f"no monitor named {name!r} (registered: [])")
        registry.unregister(name)

    def stream_state(self, dataset_name: str) -> dict:
        """Checkpointable streaming state (monitors, event seq, counters).

        Read-only like :meth:`stream_registry` — a dataset that never
        streamed reports the empty state without creating an ingestor.
        """
        entry = self._entry(dataset_name)
        ingestor = entry.ingestor
        if ingestor is None:
            return {"event_seq": 0, "monitors": [], "stream_counters": {}}
        snap = ingestor.registry.snapshot()
        return {
            "event_seq": snap["event_seq"],
            "monitors": snap["monitors"],
            "stream_counters": ingestor.counters(),
        }

    def stream_registry(self, dataset_name: str):
        """The dataset's monitor registry, or None before any streaming.

        Unlike :meth:`stream` this never creates the ingestor, so
        read-only callers (event polling under a shared lock) stay free
        of side effects.
        """
        entry = self._entry(dataset_name)
        return entry.ingestor.registry if entry.ingestor is not None else None

    def poll_events(self, dataset_name: str, since: int = 0, limit: int | None = None) -> list:
        """Monitor events with ``seq > since``, oldest first."""
        registry = self.stream_registry(dataset_name)
        return registry.poll(since, limit) if registry is not None else []

    def flush_monitors(self, dataset_name: str) -> list:
        """Flush pending SPRING candidates into events (end of stream).

        SPRING defers a report until no in-flight path can beat it, so a
        finite replay can end with its best match still pending; this
        emits those candidates.  Flushing mid-stream is allowed but, as
        with the reference matcher's ``finish``, a later overlapping
        match may then be reported again.
        """
        registry = self.stream_registry(dataset_name)
        return registry.flush() if registry is not None else []

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._loaded)

    def base(self, name: str) -> OnexBase:
        return self._entry(name).base

    def stats(self, name: str) -> BaseStats:
        return self._entry(name).stats

    def fingerprint(self, name: str) -> str | None:
        """The dataset's load-time base structure fingerprint."""
        return self._entry(name).fingerprint

    def refresh_fingerprint(self, name: str) -> str | None:
        """Recompute and store the dataset's structure fingerprint.

        Recovery calls this after the WAL tail replay: the snapshot taken
        at :meth:`restore_dataset` reflects the checkpoint, not the
        replayed mutations, and /health must report the served state.
        """
        entry = self._entry(name)
        entry.fingerprint = entry.base.structure_fingerprint()
        return entry.fingerprint

    def fingerprints(self) -> dict[str, str | None]:
        """Load-time structure fingerprints of every loaded dataset."""
        return {
            name: entry.fingerprint
            for name, entry in sorted(self._loaded.items())
        }

    def last_query_stats(self, name: str) -> dict:
        """The dataset processor's most recent ``QueryStats`` counters."""
        entry = self._entry(name)
        processor = entry.active_processor or entry.processor
        return processor.last_stats.as_dict()

    def _processor(self, name: str, metric: str | None = None) -> QueryProcessor:
        """The dataset's query processor for *metric* (default: config's).

        Processors are immutable over their config, so per-metric
        overrides get their own lazily built, cached instance; the
        default metric reuses the load-time processor, keeping the
        default path untouched.  An unknown metric name fails here in
        ``QueryConfig.__post_init__`` with a :class:`ValidationError`
        listing the registered names.
        """
        entry = self._entry(name)
        if metric is None or metric == self._query_config.metric:
            processor = entry.processor
        else:
            processor = entry.metric_processors.get(metric)
            if processor is None:
                config = replace(self._query_config, metric=str(metric))
                processor = QueryProcessor(entry.base, config)
                entry.metric_processors[metric] = processor
        entry.active_processor = processor
        return processor

    # ------------------------------------------------------------------
    # Exploratory operations (§3.3)
    # ------------------------------------------------------------------

    def best_match(self, dataset_name: str, query, *, metric=None, **kwargs) -> Match:
        """Best match for a sample sequence (Fig. 2's similarity search)."""
        return self._processor(dataset_name, metric).best_match(query, **kwargs)

    def k_best_matches(
        self, dataset_name: str, query, k: int, *, metric=None, **kwargs
    ) -> list[Match]:
        return self._processor(dataset_name, metric).k_best_matches(
            query, k, **kwargs
        )

    def batch_best_matches(
        self, dataset_name: str, queries, k: int = 1, *, metric=None, **kwargs
    ) -> list[list[Match]]:
        """The *k* best matches for every query of a batch, in one call.

        The multi-query execution layer
        (:meth:`repro.core.query.QueryProcessor.batch_matches`): shared
        prune state is prepared once, kernel stages stack across queries,
        and per-bucket kernel jobs fan out over a thread pool.  Results
        are identical to per-query :meth:`k_best_matches` calls.
        """
        return self._processor(dataset_name, metric).batch_matches(
            queries, k, **kwargs
        )

    def matches_within(
        self, dataset_name: str, query, threshold: float, *, metric=None, **kwargs
    ) -> list[Match]:
        return self._processor(dataset_name, metric).matches_within(
            query, threshold, **kwargs
        )

    def seasonal_patterns(
        self, dataset_name: str, series_name: str, length: int, threshold: float | None = None, **kwargs
    ) -> list[SeasonalPattern]:
        """Recurring patterns within one series (Fig. 4's Seasonal View)."""
        entry = self._entry(dataset_name)
        if threshold is None:
            threshold = entry.base.config.similarity_threshold
        series = entry.dataset[series_name]
        kwargs.setdefault("use_batching", self._query_config.use_analytics_batching)
        return find_seasonal_patterns(series, length, threshold, **kwargs)

    def recommend_thresholds(
        self, dataset_name: str, length: int, **kwargs
    ) -> ThresholdRecommendation:
        entry = self._entry(dataset_name)
        # The built base can answer the sampling from its normalised value
        # store; the scalar config flag keeps the standalone path
        # reachable for cross-checks.
        if self._query_config.use_analytics_batching:
            kwargs.setdefault("base", entry.base)
        return recommend_thresholds(entry.dataset, length, **kwargs)

    def similarity_profile(
        self, dataset_name: str, query, thresholds, **kwargs
    ) -> SensitivityProfile:
        """Match-count sensitivity across thresholds (§2's "varying
        parameters" exploration)."""
        kwargs.setdefault("use_batching", self._query_config.use_analytics_batching)
        return similarity_profile(
            self._entry(dataset_name).base, query, thresholds, **kwargs
        )

    # ------------------------------------------------------------------
    # Summaries for the visual layer
    # ------------------------------------------------------------------

    def overview(self, dataset_name: str, *, length: int | None = None, limit: int = 50) -> list[dict]:
        """Overview Pane payload: representatives with group cardinality.

        Groups are sorted by cardinality (the pane's colour intensity) and
        truncated to *limit*; *length* picks one indexed length (default:
        the longest, matching the demo's full-series overview).
        """
        base = self._entry(dataset_name).base
        if length is None:
            length = base.lengths[-1]
        bucket = base.bucket(length)
        ranked = sorted(
            range(bucket.group_count),
            key=lambda g: -bucket.groups[g].cardinality,
        )[:limit]
        return [
            {
                "group": (length, g),
                "cardinality": bucket.groups[g].cardinality,
                "representative": bucket.groups[g].centroid.tolist(),
            }
            for g in ranked
        ]

    def query_from_series(
        self, dataset_name: str, series_name: str, start: int = 0, length: int | None = None
    ) -> SubsequenceRef:
        """Build a query ref by brushing a stored series (Query Preview)."""
        entry = self._entry(dataset_name)
        series = entry.dataset[series_name]
        if length is None:
            length = len(series) - start
        if length < 2:
            raise ValidationError("brushed query must have at least 2 points")
        series.subsequence(start, length)  # validates the window
        return SubsequenceRef(entry.dataset.index_of(series_name), start, length)

    def _entry(self, name: str) -> LoadedDataset:
        try:
            return self._loaded[name]
        except KeyError:
            raise DatasetError(
                f"dataset {name!r} not loaded (loaded: {self.dataset_names})"
            ) from None
