"""Argument validation shared by the analytics entry points.

The analytics operations sit directly behind the JSON service, so their
arguments can arrive as anything a client manages to send — including a
numpy array where a scalar length belongs, which used to surface as
numpy's opaque "truth value of an array is ambiguous" ``ValueError`` deep
inside :mod:`repro.core.threshold`.  These helpers reject wrong *types*
with a clear :class:`~repro.exceptions.ValidationError` before any numeric
code runs; range checks stay with the individual entry points, next to
the semantics they enforce.
"""

from __future__ import annotations

import math
import numbers

from repro.exceptions import ValidationError

__all__ = [
    "as_bool_arg",
    "as_int_arg",
    "as_optional_int_arg",
    "as_optional_timeout_ms",
]


def as_int_arg(value, name: str) -> int:
    """*value* as a plain ``int``, or :class:`ValidationError`.

    Accepts Python ints and numpy integer scalars; rejects bools, floats
    (even integral ones — a float length is almost always a unit mistake),
    arrays, and everything else with a message naming the argument.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValidationError(
            f"{name} must be an integer, got {type(value).__name__}"
        )
    return int(value)


def as_optional_int_arg(value, name: str) -> int | None:
    """Like :func:`as_int_arg` but passing ``None`` through."""
    if value is None:
        return None
    return as_int_arg(value, name)


def as_bool_arg(value, name: str) -> bool:
    """*value* as a plain ``bool``, or :class:`ValidationError`.

    Strict: only actual booleans pass.  JSON has a real boolean type, so
    a 0/1 or "true" here is a client bug worth surfacing, not coercing.
    """
    if not isinstance(value, bool):
        raise ValidationError(
            f"{name} must be a boolean, got {type(value).__name__}"
        )
    return value


def as_optional_timeout_ms(value, name: str = "timeout_ms") -> float | None:
    """*value* as a positive, finite millisecond budget; ``None`` passes.

    Accepts ints and floats (numpy scalars included); rejects bools,
    non-positive, non-finite, and non-numeric values.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ValidationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    value = float(value)
    if not (value > 0 and math.isfinite(value)):
        raise ValidationError(
            f"{name} must be positive and finite, got {value}"
        )
    return value
