"""ONEX core: similarity groups, the ONEX base, and exploratory operations.

This package is the paper's primary contribution:

- :mod:`repro.core.config` — build/query parameter records.
- :mod:`repro.core.grouping` — ONEX similarity groups (§3.1).
- :mod:`repro.core.base` — the compact ONEX base built offline with ED.
- :mod:`repro.core.query` — DTW-powered online query processor (§3.2/3.3).
- :mod:`repro.core.seasonal` — recurring-pattern (seasonal) mining (Fig. 4).
- :mod:`repro.core.threshold` — data-driven similarity-threshold
  recommendation (§3.3).
- :mod:`repro.core.engine` — the facade mirroring Fig. 1's architecture.
"""

from repro.core.base import BaseStats, OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.engine import OnexEngine
from repro.core.grouping import SimilarityGroup
from repro.core.query import Match, QueryProcessor, QueryStats
from repro.core.seasonal import SeasonalPattern, find_seasonal_patterns
from repro.core.sensitivity import (
    SensitivityPoint,
    SensitivityProfile,
    similarity_profile,
)
from repro.core.threshold import ThresholdRecommendation, recommend_thresholds

__all__ = [
    "BaseStats",
    "BuildConfig",
    "Match",
    "OnexBase",
    "OnexEngine",
    "QueryConfig",
    "QueryProcessor",
    "QueryStats",
    "SeasonalPattern",
    "SensitivityPoint",
    "SensitivityProfile",
    "SimilarityGroup",
    "ThresholdRecommendation",
    "find_seasonal_patterns",
    "recommend_thresholds",
    "similarity_profile",
]
