"""Crash-safe filesystem primitives shared by persistence layers.

:meth:`repro.core.base.OnexBase.save` and the durability subsystem
(:mod:`repro.durability`) all follow the same discipline when making a
file durable:

1. write the complete content to a same-directory temp file,
2. flush and ``fsync`` the temp file (its *bytes* are on stable storage),
3. ``os.replace`` it over the destination (atomic on POSIX),
4. ``fsync`` the containing **directory** so the rename itself — a
   directory-entry mutation — survives power loss.

Step 4 is the part that is easy to forget: without it a crash after the
rename can resurrect the old file (or no file) even though the data
blocks were synced, because the directory entry was still only in the
page cache.  ``fsync_dir`` is a no-op on platforms that cannot open
directories (Windows), where ``os.replace`` metadata ordering is the
filesystem's problem.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = [
    "atomic_json_write",
    "atomic_npz_write",
    "fsync_dir",
    "sha256_file",
]


def fsync_dir(path) -> None:
    """fsync the directory at *path* so renames inside it are durable."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds (e.g. Windows)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, write_fn) -> None:
    """Temp-write / fsync / rename / dir-fsync around *write_fn(fh)*."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_json_write(path, obj) -> None:
    """Durably replace *path* with *obj* as JSON (see module docstring)."""
    data = json.dumps(obj, indent=2, sort_keys=True, default=float).encode()
    _atomic_write(Path(path), lambda fh: fh.write(data))


def atomic_npz_write(path, arrays: dict) -> None:
    """Durably replace *path* with an uncompressed ``.npz`` of *arrays*."""
    import numpy as np

    _atomic_write(Path(path), lambda fh: np.savez(fh, **arrays))


def sha256_file(path) -> str:
    """Content hash of one file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
