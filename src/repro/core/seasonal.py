"""Seasonal similarity: recurring patterns within a single time series.

The paper's Seasonal View (Fig. 4) highlights repeated patterns inside one
series — e.g. a household using electricity the same way across summer
months.  ONEX answers this with the same machinery as cross-series search:
the windows of the *single* series are clustered into similarity groups
with ED, and groups containing several non-overlapping windows are
reported as recurring patterns, verified pairwise under DTW.

:func:`find_seasonal_patterns` is self-contained (it builds its own
per-series groups) so the seasonal operation does not require the whole
collection's base to cover the requested window length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grouping import cluster_subsequences
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.dtw import dtw_distance
from repro.exceptions import ValidationError

__all__ = ["SeasonalPattern", "find_seasonal_patterns"]


@dataclass(frozen=True)
class SeasonalPattern:
    """A recurring pattern: non-overlapping occurrences of similar shape.

    Attributes
    ----------
    starts:
        Window start offsets within the series, ascending.
    length:
        Window length shared by all occurrences.
    centroid:
        The pattern's representative shape (group centroid).
    max_pairwise_dtw:
        Largest normalised DTW between any two occurrences — the verified
        tightness of the pattern (``<=`` the requested threshold).
    """

    starts: tuple[int, ...]
    length: int
    centroid: np.ndarray
    max_pairwise_dtw: float

    @property
    def occurrences(self) -> int:
        return len(self.starts)

    def segments(self) -> list[tuple[int, int]]:
        """``(start, stop)`` index pairs of the occurrences."""
        return [(s, s + self.length) for s in self.starts]


def _select_nonoverlapping(
    refs: list[SubsequenceRef], centroid: np.ndarray, values_of
) -> list[SubsequenceRef]:
    """Greedy maximum set of non-overlapping members, closest-first."""
    scored = sorted(
        refs, key=lambda ref: float(np.abs(values_of(ref) - centroid).mean())
    )
    chosen: list[SubsequenceRef] = []
    for ref in scored:
        if all(not ref.overlaps(kept) for kept in chosen):
            chosen.append(ref)
    return sorted(chosen, key=lambda ref: ref.start)


def find_seasonal_patterns(
    series: TimeSeries,
    length: int,
    threshold: float,
    *,
    step: int = 1,
    min_occurrences: int = 2,
    max_patterns: int | None = None,
    window: int | None = None,
    normalize: bool = True,
    remove_level: bool = False,
    ed_threshold: float | None = None,
) -> list[SeasonalPattern]:
    """Find recurring patterns of *length* within one series.

    Windows are clustered with ED at radius ``ed_threshold/2`` (the ONEX
    construction), then each group's best non-overlapping occurrence set is
    verified pairwise under normalised DTW; occurrences violating
    *threshold* against the rest are dropped (farthest first).  Patterns
    are ranked by occurrence count, then tightness.

    *ed_threshold* defaults to ``2 * threshold``: recurrences that are
    DTW-similar can be phase-jittered and therefore farther apart under
    pointwise ED, so the grouping stage needs a looser net (recall) while
    the DTW verification stage enforces *threshold* exactly (precision).

    With *normalize*, the series is min–max scaled to [0, 1] first so
    *threshold* means the same thing as in base construction.  With
    *remove_level*, each window's mean is subtracted before comparison, so
    a habit recurring at different seasonal levels (winter vs summer
    electricity usage, as in the paper's Fig. 4 narrative) still matches on
    shape.
    """
    if length < 2:
        raise ValidationError(f"length must be >= 2, got {length}")
    if length > len(series):
        raise ValidationError(
            f"length {length} exceeds series length {len(series)}"
        )
    if not threshold > 0:
        raise ValidationError(f"threshold must be > 0, got {threshold}")
    if min_occurrences < 2:
        raise ValidationError("min_occurrences must be >= 2")
    if ed_threshold is None:
        ed_threshold = 2.0 * threshold
    if not ed_threshold > 0:
        raise ValidationError(f"ed_threshold must be > 0, got {ed_threshold}")

    dataset = TimeSeriesDataset([series], name="seasonal")
    if normalize:
        dataset = dataset.normalized()
    matrix, refs = dataset.subsequence_matrix(length, step=step)
    if remove_level:
        matrix = matrix - matrix.mean(axis=1, keepdims=True)
    row_of = {ref: k for k, ref in enumerate(refs)}

    def values_of(ref: SubsequenceRef) -> np.ndarray:
        return matrix[row_of[ref]]

    groups = cluster_subsequences(matrix, refs, ed_threshold / 2.0)

    patterns: list[SeasonalPattern] = []
    for group in groups:
        if group.cardinality < min_occurrences:
            continue
        chosen = _select_nonoverlapping(
            list(group.members), group.centroid, values_of
        )
        # Verify pairwise DTW, dropping the farthest-from-centroid
        # occurrences until the set is tight or too small.
        while len(chosen) >= min_occurrences:
            values = [values_of(ref) for ref in chosen]
            worst = 0.0
            worst_pair = None
            for i in range(len(values)):
                for j in range(i + 1, len(values)):
                    d = dtw_distance(
                        values[i], values[j], window=window, normalized=True
                    )
                    if d > worst:
                        worst, worst_pair = d, (i, j)
            if worst <= threshold:
                patterns.append(
                    SeasonalPattern(
                        starts=tuple(ref.start for ref in chosen),
                        length=length,
                        centroid=group.centroid,
                        max_pairwise_dtw=worst,
                    )
                )
                break
            # Drop whichever of the offending pair is farther from the
            # centroid and retry with the remainder.
            i, j = worst_pair
            di = float(np.abs(values[i] - group.centroid).mean())
            dj = float(np.abs(values[j] - group.centroid).mean())
            chosen.pop(i if di >= dj else j)

    patterns.sort(key=lambda p: (-p.occurrences, p.max_pairwise_dtw))
    if max_patterns is not None:
        patterns = patterns[:max_patterns]
    return patterns
