"""Seasonal similarity: recurring patterns within a single time series.

The paper's Seasonal View (Fig. 4) highlights repeated patterns inside one
series — e.g. a household using electricity the same way across summer
months.  ONEX answers this with the same machinery as cross-series search:
the windows of the *single* series are clustered into similarity groups
with ED, and groups containing several non-overlapping windows are
reported as recurring patterns, verified pairwise under DTW.

Verification is where the work is, and it runs on the batched kernel
cascade (DESIGN.md §4): all unique occurrence pairs of a group are bounded
at once — a vectorised mean-L1 *upper* bound plus the
:func:`~repro.distances.lower_bounds.lb_pairwise_table` LB_Kim/LB_Keogh
*lower* table — and exact DTW runs only for the pairs that can still
decide the group's worst pairwise distance, stacked into condensed
paired-kernel calls (:func:`~repro.distances.dtw.dtw_distance_condensed`).
Tight groups resolve with a handful of kernel invocations where the seed
implementation paid one scalar ``dtw_path`` per pair per drop iteration;
results are identical (the scalar twin stays reachable with
``use_batching=False`` and the property suite cross-checks them).

:func:`find_seasonal_patterns` is self-contained (it builds its own
per-series groups) so the seasonal operation does not require the whole
collection's base to cover the requested window length.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.deadline import Deadline
from repro.core.grouping import cluster_subsequences
from repro.core.validation import as_int_arg, as_optional_int_arg
from repro.data.dataset import SubsequenceRef, TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.dtw import dtw_distance, dtw_distance_condensed
from repro.distances.lower_bounds import lb_pairwise_table
from repro.exceptions import DeadlineExceeded, ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.testing import faults

# Shared across the analytics modules (seasonal / sensitivity /
# threshold): one labelled counter + latency histogram, idempotently
# re-registered by each importer.
_ANALYTICS_TOTAL = REGISTRY.counter(
    "onex_analytics_total", "Completed analytics operations by op"
)
_ANALYTICS_MS = REGISTRY.histogram(
    "onex_analytics_ms", "Analytics operation wall time (milliseconds)"
)

__all__ = ["SeasonalPattern", "find_seasonal_patterns"]

#: Pairs evaluated per round of the lazy worst-pair walk; grows
#: geometrically within one group so adversarial bound distributions cost
#: O(log pairs) kernel calls while tight groups stop after the first one.
_PAIR_CHUNK = 16

#: ``np.triu_indices(n, 1)`` memoised by ``n`` — the verifier's drop loop
#: re-enumerates the active pairs every iteration, and the enumeration for
#: one set size never changes.  The cache is bounded by total stored pair
#: count, not entry count: one entry costs O(n^2) memory, so a plain
#: entry cap would let a run over a long series pin O(n^3) bytes.
_TRIU_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_TRIU_CACHE_BUDGET = 1 << 21  # ~32 MB of index pairs at two int64 per pair
_triu_cache_used = 0


def _unique_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    global _triu_cache_used
    try:
        return _TRIU_CACHE[n]
    except KeyError:
        pairs = np.triu_indices(n, k=1)
        count = pairs[0].size
        if _triu_cache_used + count <= _TRIU_CACHE_BUDGET:
            _TRIU_CACHE[n] = pairs
            _triu_cache_used += count
        return pairs


@dataclass(frozen=True)
class SeasonalPattern:
    """A recurring pattern: non-overlapping occurrences of similar shape.

    Attributes
    ----------
    starts:
        Window start offsets within the series, ascending.
    length:
        Window length shared by all occurrences.
    centroid:
        The pattern's representative shape (group centroid).
    max_pairwise_dtw:
        Largest normalised DTW between any two occurrences — the verified
        tightness of the pattern (``<=`` the requested threshold).
    """

    starts: tuple[int, ...]
    length: int
    centroid: np.ndarray
    max_pairwise_dtw: float

    @property
    def occurrences(self) -> int:
        return len(self.starts)

    def segments(self) -> list[tuple[int, int]]:
        """``(start, stop)`` index pairs of the occurrences."""
        return [(s, s + self.length) for s in self.starts]


def _select_nonoverlapping(
    refs: list[SubsequenceRef], centroid: np.ndarray, rows: np.ndarray
) -> list[SubsequenceRef]:
    """Greedy maximum set of non-overlapping members, closest-first.

    *rows* carries the members' values aligned with *refs*; the closeness
    scores come from one vectorised pass instead of a per-ref reduction.
    """
    scores = np.abs(rows - centroid).mean(axis=1)
    order = sorted(range(len(refs)), key=lambda k: float(scores[k]))
    chosen: list[SubsequenceRef] = []
    for k in order:
        ref = refs[k]
        if all(not ref.overlaps(kept) for kept in chosen):
            chosen.append(ref)
    return sorted(chosen, key=lambda ref: ref.start)


class _PairwiseWorstFinder:
    """Exact worst pairwise normalised DTW over a shrinking occurrence set.

    Bounds every unique pair once up front — the diagonal-path mean-L1
    upper bound (any warping path through equal-length sequences is at
    most the diagonal's cost over at least its length) and the
    LB_Kim/LB_Keogh lower table scaled by the maximal path length — then
    answers each ``worst(active)`` request by evaluating exact DTW only
    for pairs whose upper bound can still reach the running maximum, in
    descending-bound condensed-kernel chunks.  Exact values are memoised,
    so the drop loop of the verifier never recomputes a pair (the seed
    implementation recomputed every pair on every drop).

    The returned ``(worst, pair)`` is identical to the scalar scan's,
    including the first-pair-wins tie-break: a pair is skipped only when
    its upper bound is *strictly* below a proven exact value or below
    another pair's lower bound, either of which places it strictly under
    the maximum.
    """

    #: Below this many unique pairs the bound tables cost more than the
    #: DTW they could save; the finder then evaluates every pair eagerly
    #: in one condensed call and answers ``worst`` by lookup (memoisation
    #: across drop iterations is still the big win over the scalar scan).
    _BOUNDS_MIN_PAIRS = 16

    def __init__(
        self,
        rows: np.ndarray,
        window: int | None,
        deadline: Deadline | None = None,
    ) -> None:
        self._rows = rows
        self._window = window
        self._deadline = deadline
        n, length = rows.shape
        self._exact = np.full((n, n), np.nan)
        np.fill_diagonal(self._exact, 0.0)
        self._use_bounds = n * (n - 1) // 2 >= self._BOUNDS_MIN_PAIRS
        if self._use_bounds:
            max_path = 2 * length - 1
            diffs = np.abs(rows[:, None, :] - rows[None, :, :])
            self._upper = diffs.mean(axis=2)
            self._lower = lb_pairwise_table(rows, radius=window) / max_path
        else:
            iu, ju = _unique_pairs(n)
            raws, plens = dtw_distance_condensed(
                rows, pairs=(iu, ju), window=window, with_path_length=True
            )
            values = raws / plens
            self._exact[iu, ju] = values
            self._exact[ju, iu] = values

    def worst(self, active: list[int]) -> tuple[float, tuple[int, int]]:
        """Max exact pairwise DTW over *active* and its first attaining pair.

        Returns positions into *active* (matching the scalar scan's
        row-major pair enumeration) so the caller's drop logic is shared
        between both implementations.
        """
        act = np.asarray(active, dtype=np.int64)
        ai, aj = _unique_pairs(act.size)
        gi, gj = act[ai], act[aj]
        exact = self._exact[gi, gj]
        if not self._use_bounds:
            worst = float(exact.max())
            first = int(np.nonzero(exact == worst)[0][0])
            return worst, (int(ai[first]), int(aj[first]))
        upper = self._upper[gi, gj]
        lower = self._lower[gi, gj]

        known = ~np.isnan(exact)
        best = float(exact[known].max()) if known.any() else -math.inf
        # Any pair's lower bound is achieved by *some* active pair, so a
        # pair whose upper bound sits strictly below it can never be the
        # maximum (nor tie it) — safe to leave unevaluated.
        skip_bound = max(float(lower.max()), best)
        pending = np.nonzero(~known & (upper >= skip_bound))[0]
        order = pending[np.argsort(-upper[pending], kind="stable")]
        pos = 0
        chunk = _PAIR_CHUNK
        while pos < order.size:
            faults.fire("seasonal.pair_chunk")
            if self._deadline is not None:
                self._deadline.check(
                    "seasonal pair verification",
                    {"pairs_evaluated": pos, "pairs_pending": int(order.size - pos)},
                )
            take = order[pos : pos + chunk]
            pos += take.size
            chunk *= 2
            full = take.size
            take = take[upper[take] >= skip_bound]
            if take.size:
                with span("seasonal.pair_chunk", pairs=int(take.size)):
                    raws, plens = dtw_distance_condensed(
                        self._rows,
                        pairs=(gi[take], gj[take]),
                        window=self._window,
                        with_path_length=True,
                    )
                values = raws / plens
                self._exact[gi[take], gj[take]] = values
                self._exact[gj[take], gi[take]] = values
                exact[take] = values
                best = max(best, float(values.max()))
                skip_bound = max(skip_bound, best)
            if take.size < full:
                # The order is descending in upper bound: once one entry
                # falls below the skip bound, every later entry does too.
                break
        known = ~np.isnan(exact)
        worst = float(exact[known].max())
        first = int(np.nonzero(known & (exact == worst))[0][0])
        return worst, (int(ai[first]), int(aj[first]))


def _verify_batched(
    chosen: list[SubsequenceRef],
    centroid: np.ndarray,
    rows: np.ndarray,
    threshold: float,
    window: int | None,
    min_occurrences: int,
    deadline: Deadline | None = None,
) -> tuple[list[SubsequenceRef], float] | None:
    """Batched verify-and-drop: memoised condensed DTW with bound pruning."""
    centroid_dist = np.abs(rows - centroid).mean(axis=1)
    finder = _PairwiseWorstFinder(rows, window, deadline)
    active = list(range(len(chosen)))
    while len(active) >= min_occurrences:
        worst, (i, j) = finder.worst(active)
        if worst <= threshold:
            return [chosen[a] for a in active], worst
        di = float(centroid_dist[active[i]])
        dj = float(centroid_dist[active[j]])
        active.pop(i if di >= dj else j)
    return None


def _verify_scalar(
    chosen: list[SubsequenceRef],
    centroid: np.ndarray,
    rows: np.ndarray,
    threshold: float,
    window: int | None,
    min_occurrences: int,
    deadline: Deadline | None = None,
) -> tuple[list[SubsequenceRef], float] | None:
    """Seed scalar verify-and-drop: one ``dtw_distance`` call per pair per
    iteration.  Kept as the cross-check twin of :func:`_verify_batched`."""
    chosen = list(chosen)
    active = list(range(len(chosen)))
    while len(chosen) >= min_occurrences:
        faults.fire("seasonal.pair_chunk")
        if deadline is not None:
            deadline.check(
                "seasonal pair verification", {"occurrences_active": len(active)}
            )
        values = [rows[a] for a in active]
        worst = 0.0
        worst_pair = None
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                d = dtw_distance(
                    values[i], values[j], window=window, normalized=True
                )
                if d > worst:
                    worst, worst_pair = d, (i, j)
        if worst <= threshold:
            return chosen, worst
        # Drop whichever of the offending pair is farther from the
        # centroid and retry with the remainder.
        i, j = worst_pair
        di = float(np.abs(values[i] - centroid).mean())
        dj = float(np.abs(values[j] - centroid).mean())
        drop = i if di >= dj else j
        chosen.pop(drop)
        active.pop(drop)
    return None


def find_seasonal_patterns(
    series: TimeSeries,
    length: int,
    threshold: float,
    *,
    step: int = 1,
    min_occurrences: int = 2,
    max_patterns: int | None = None,
    window: int | None = None,
    normalize: bool = True,
    remove_level: bool = False,
    ed_threshold: float | None = None,
    use_batching: bool = True,
    deadline: Deadline | None = None,
) -> list[SeasonalPattern]:
    """Find recurring patterns of *length* within one series.

    Windows are clustered with ED at radius ``ed_threshold/2`` (the ONEX
    construction), then each group's best non-overlapping occurrence set is
    verified pairwise under normalised DTW; occurrences violating
    *threshold* against the rest are dropped (farthest first).  Patterns
    are ranked by occurrence count, then tightness.

    *ed_threshold* defaults to ``2 * threshold``: recurrences that are
    DTW-similar can be phase-jittered and therefore farther apart under
    pointwise ED, so the grouping stage needs a looser net (recall) while
    the DTW verification stage enforces *threshold* exactly (precision).

    With *normalize*, the series is min–max scaled to [0, 1] first so
    *threshold* means the same thing as in base construction.  With
    *remove_level*, each window's mean is subtracted before comparison, so
    a habit recurring at different seasonal levels (winter vs summer
    electricity usage, as in the paper's Fig. 4 narrative) still matches on
    shape.

    *use_batching* selects the condensed-pairwise verifier (the default);
    ``False`` runs the retained scalar scan — identical results, kept for
    ablations and the property-suite cross-check.

    A *deadline* is checked per candidate group and per pair-DTW chunk;
    with ``allow_partial`` the miner returns the (fully verified)
    patterns found before the budget fired instead of raising.
    """
    length = as_int_arg(length, "length")
    step = as_int_arg(step, "step")
    min_occurrences = as_int_arg(min_occurrences, "min_occurrences")
    max_patterns = as_optional_int_arg(max_patterns, "max_patterns")
    window = as_optional_int_arg(window, "window")
    if length < 2:
        raise ValidationError(f"length must be >= 2, got {length}")
    if length > len(series):
        raise ValidationError(
            f"length {length} exceeds series length {len(series)}"
        )
    if not threshold > 0:
        raise ValidationError(f"threshold must be > 0, got {threshold}")
    if min_occurrences < 2:
        raise ValidationError("min_occurrences must be >= 2")
    if ed_threshold is None:
        ed_threshold = 2.0 * threshold
    if not ed_threshold > 0:
        raise ValidationError(f"ed_threshold must be > 0, got {ed_threshold}")

    dataset = TimeSeriesDataset([series], name="seasonal")
    if normalize:
        dataset = dataset.normalized()
    matrix, refs = dataset.subsequence_matrix(length, step=step)
    if remove_level:
        matrix = matrix - matrix.mean(axis=1, keepdims=True)
    started = time.perf_counter()
    row_of = {ref: k for k, ref in enumerate(refs)}
    with span("seasonal.cluster", windows=len(refs)):
        groups = cluster_subsequences(matrix, refs, ed_threshold / 2.0)
    verify = _verify_batched if use_batching else _verify_scalar

    patterns: list[SeasonalPattern] = []
    for scanned, group in enumerate(groups):
        faults.fire("seasonal.group")
        if deadline is not None and deadline.expired:
            if deadline.allow_partial:
                break
            deadline.check(
                "seasonal group scan",
                {
                    "groups_scanned": scanned,
                    "groups_total": len(groups),
                    "patterns_found": len(patterns),
                },
            )
        if group.cardinality < min_occurrences:
            continue
        members = list(group.members)
        member_rows = matrix[[row_of[m] for m in members]]
        chosen = _select_nonoverlapping(members, group.centroid, member_rows)
        if len(chosen) < min_occurrences:
            continue
        chosen_rows = matrix[[row_of[r] for r in chosen]]
        try:
            with span("seasonal.group", occurrences=len(chosen)):
                verified = verify(
                    chosen,
                    group.centroid,
                    chosen_rows,
                    threshold,
                    window,
                    min_occurrences,
                    deadline,
                )
        except DeadlineExceeded:
            if deadline is not None and deadline.allow_partial:
                # Patterns verified so far are complete; a half-verified
                # group is dropped rather than reported loosely.
                break
            raise
        if verified is None:
            continue
        kept, worst = verified
        patterns.append(
            SeasonalPattern(
                starts=tuple(ref.start for ref in kept),
                length=length,
                centroid=group.centroid,
                max_pairwise_dtw=worst,
            )
        )

    patterns.sort(key=lambda p: (-p.occurrences, p.max_pairwise_dtw))
    if max_patterns is not None:
        patterns = patterns[:max_patterns]
    _ANALYTICS_TOTAL.inc(op="seasonal")
    _ANALYTICS_MS.observe((time.perf_counter() - started) * 1000.0, op="seasonal")
    return patterns
