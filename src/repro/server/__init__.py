"""Client/server layer: the demo's web backend (S14).

- :mod:`repro.server.protocol` — typed JSON request/response envelopes.
- :mod:`repro.server.service` — transport-agnostic request handler over
  :class:`repro.core.engine.OnexEngine` (loading datasets triggers
  server-side preprocessing, exactly as in §4 "Data Loading into ONEX").
- :mod:`repro.server.http` — a stdlib-only threaded HTTP JSON API with
  admission control and graceful draining.
- :mod:`repro.server.client` — a retrying HTTP client (read-only
  operations only; honours ``Retry-After``).
- :mod:`repro.server.pool` — supervised pre-fork worker pool serving
  read-only queries over mmap-shared base snapshots (crash isolation,
  heartbeat hang detection, backoff restart, flap circuit breaker).
- :mod:`repro.server.supervisor` — routes requests between the
  authoritative single-process service and the pool; publishes base
  snapshots lazily after mutations for read-your-writes.
"""

from repro.server.client import OnexClient
from repro.server.http import (
    AdmissionGate,
    DatasetLockManager,
    OnexHttpServer,
    ReadWriteLock,
)
from repro.server.pool import WorkerPool
from repro.server.protocol import Request, Response
from repro.server.service import OnexService
from repro.server.supervisor import Supervisor

__all__ = [
    "AdmissionGate",
    "DatasetLockManager",
    "OnexClient",
    "OnexHttpServer",
    "OnexService",
    "ReadWriteLock",
    "Request",
    "Response",
    "Supervisor",
    "WorkerPool",
]
