"""Client/server layer: the demo's web backend (S14).

- :mod:`repro.server.protocol` — typed JSON request/response envelopes.
- :mod:`repro.server.service` — transport-agnostic request handler over
  :class:`repro.core.engine.OnexEngine` (loading datasets triggers
  server-side preprocessing, exactly as in §4 "Data Loading into ONEX").
- :mod:`repro.server.http` — a stdlib-only threaded HTTP JSON API with
  admission control and graceful draining.
- :mod:`repro.server.client` — a retrying HTTP client (read-only
  operations only; honours ``Retry-After``).
"""

from repro.server.client import OnexClient
from repro.server.http import (
    AdmissionGate,
    DatasetLockManager,
    OnexHttpServer,
    ReadWriteLock,
)
from repro.server.protocol import Request, Response
from repro.server.service import OnexService

__all__ = [
    "AdmissionGate",
    "DatasetLockManager",
    "OnexClient",
    "OnexHttpServer",
    "OnexService",
    "ReadWriteLock",
    "Request",
    "Response",
]
