"""Transport-agnostic ONEX service: JSON requests in, JSON responses out.

Wraps :class:`repro.core.engine.OnexEngine` with the demo's server
workflow: "with a click of a button, analysts can load new data sets into
ONEX" — a ``load_dataset`` request builds the base server-side, after
which exploration operations answer in near real time.  Built-in sources
(``matters``, ``electricity``) cover the demo datasets; ``ucr:<path>``
loads archive-format files.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.core.config import QueryConfig
from repro.core.deadline import Deadline
from repro.core.engine import OnexEngine
from repro.core.validation import as_bool_arg, as_optional_timeout_ms
from repro.data.electricity import build_electricity_collection
from repro.data.matters import build_matters_collection
from repro.data.ucr_format import load_ucr_file
from repro.durability.idempotency import IdempotencyWindow

if TYPE_CHECKING:
    from repro.durability import DurabilityManager
    from repro.durability.recovery import RecoveryReport
from repro.exceptions import DeadlineExceeded, OnexError, ProtocolError
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import new_request_id, span, tracing
from repro.server.protocol import (
    DURABLE_OPERATIONS,
    OPERATION_OPTIONS,
    Request,
    Response,
)
from repro.viz.payloads import (
    overview_payload,
    query_preview_payload,
    seasonal_view_payload,
    similarity_view_payload,
)

__all__ = ["OnexService"]

_LOG = get_logger("service")

_DEDUP_TOTAL = REGISTRY.counter(
    "onex_idempotent_dedup_total",
    "Duplicate mutating requests answered from the idempotency window",
)

#: Request options that parameterise *this* execution, not the mutation
#: itself — stripped from WAL records so replay is deterministic (a
#: deadline that fired live must not re-fire during recovery).
_EXECUTION_ONLY_OPTIONS = ("timeout_ms", "allow_partial", "explain")

#: Explain-capable operations whose payload also carries the query
#: processor's cascade counters (the analytics ops only get spans).
_CASCADE_OPS = frozenset(
    {"best_match", "k_best", "query_batch", "matches_within"}
)

#: Keyword arguments of load_dataset requests forwarded to the engine.
_LOAD_OPTIONS = (
    "similarity_threshold",
    "min_length",
    "max_length",
    "step",
    "normalize",
    "num_workers",
    "build_executor",
)


class OnexService:
    """Handles protocol requests against one engine instance.

    *default_build_workers* applies to ``load_dataset`` requests that do
    not name ``num_workers`` themselves — the ``serve --build-workers``
    deployment knob; explicit request parameters always win.
    *default_timeout_ms* is the server-side deadline applied to every
    long-running operation that does not carry its own ``timeout_ms``
    (see :data:`repro.server.protocol.OPERATION_OPTIONS`).
    """

    def __init__(
        self,
        query_config: QueryConfig | None = None,
        *,
        default_build_workers: int | None = None,
        default_timeout_ms: float | None = None,
        durability: DurabilityManager | None = None,
        idempotency_window: int = 1024,
    ) -> None:
        self._engine = OnexEngine(query_config)
        self._default_build_workers = default_build_workers
        self._default_timeout_ms = as_optional_timeout_ms(
            default_timeout_ms, "default_timeout_ms"
        )
        #: Optional :class:`repro.durability.DurabilityManager` — when
        #: set, durable operations are WAL-logged before acknowledgement
        #: and datasets checkpoint on the manager's cadence.
        self._durability = durability
        # The idempotency window is always on (not gated on durability):
        # retry-after-timeout double execution is a liveness bug even for
        # a RAM-only server.
        self._idempotency = IdempotencyWindow(idempotency_window)
        self.last_recovery = None

    @property
    def engine(self) -> OnexEngine:
        return self._engine

    @property
    def durability(self) -> DurabilityManager | None:
        return self._durability

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle(self, request: Request | dict | str | bytes) -> Response:
        """Dispatch one request; *every* failure becomes an error response.

        Every request gets a request ID (the caller's, else a freshly
        minted one) that is echoed in the response envelope.  With
        ``explain=True`` (explain-capable operations only) the dispatch
        runs inside an activated trace and the result payload carries an
        ``"explain"`` object — pure observation, so the result proper is
        bit-identical to the unexplained call.

        Durable operations (:data:`DURABLE_OPERATIONS`) take the
        log-then-execute-then-remember path: a duplicate ``request_id``
        is answered from the idempotency window without re-executing; a
        fresh one is WAL-logged first (an append failure is returned
        *unrecorded*, so the client's retry re-attempts the whole op),
        then executed, and its outcome — success or failure — recorded
        against the id before the response leaves the service.
        """
        request_id: str | None = None
        try:
            if isinstance(request, (str, bytes)):
                request = Request.from_json(request)
            elif isinstance(request, dict):
                request = Request.from_dict(request)
            if request.request_id is None:
                request = replace(request, request_id=new_request_id())
        except (OnexError, ValueError, TypeError, KeyError) as exc:
            return Response.failure(exc)
        request_id = request.request_id
        op = request.op
        if op in DURABLE_OPERATIONS:
            return self._handle_durable(request)
        response = self._execute(request)
        if self._durability is not None and response.ok:
            if op == "load_dataset":
                self._attach_durable(str(response.result["dataset"]))
            elif op == "unload_dataset":
                self._durability.detach(
                    str(request.params["dataset"]), delete=True
                )
        return response

    def _handle_durable(self, request: Request) -> Response:
        request_id = request.request_id
        op = request.op
        name = str(request.params.get("dataset", ""))
        cached = self._idempotency.lookup(request_id)
        if cached is not None:
            _DEDUP_TOTAL.inc(op=op)
            log_event(
                _LOG,
                "info",
                "idempotent.dedup",
                op=op,
                request_id=request_id,
            )
            return cached.with_request_id(request_id)
        handle = (
            self._durability.get(name) if self._durability is not None else None
        )
        if handle is not None:
            wal_params = {
                k: v
                for k, v in request.params.items()
                if k not in _EXECUTION_ONLY_OPTIONS
            }
            try:
                handle.log(op, wal_params, request_id)
            except Exception as exc:
                # The op never ran and was never acknowledged; leaving
                # the window empty makes the client's retry re-attempt
                # (log, execute) from scratch.
                log_event(
                    _LOG,
                    "error",
                    "wal.append_failed",
                    op=op,
                    dataset=name,
                    request_id=request_id,
                    error=str(exc),
                )
                if isinstance(exc, (OnexError, ValueError, OSError)):
                    return Response.failure(exc).with_request_id(request_id)
                return Response.internal_error(exc).with_request_id(request_id)
        response = self._execute(request)
        self._idempotency.record(request_id, response)
        if handle is not None and response.ok:
            self._checkpoint_if_due(name)
        return response

    def _execute(self, request: Request) -> Response:
        """Dispatch one parsed request; never raises."""
        request_id = request.request_id
        op = request.op
        try:
            handler = getattr(self, f"_op_{op}")
            if self._explain_requested(op, request.params):
                with tracing(request_id) as trace:
                    with span(f"op.{op}", op=op):
                        result = handler(request.params)
                result = self._attach_explain(op, request.params, result, trace)
            else:
                result = handler(request.params)
            return Response.success(result).with_request_id(request_id)
        except (OnexError, ValueError, TypeError, KeyError, OSError) as exc:
            if isinstance(exc, DeadlineExceeded):
                log_event(
                    _LOG,
                    "warning",
                    "deadline.expired",
                    op=op,
                    request_id=request_id,
                    stage=exc.stage,
                )
            return Response.failure(exc).with_request_id(request_id)
        except Exception as exc:  # final guard: a handler bug (e.g. an
            # AttributeError or a numpy edge case) must degrade to a
            # structured failure, not sever the connection mid-request.
            return Response.internal_error(exc).with_request_id(request_id)

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------

    def _attach_durable(self, name: str) -> None:
        """Open durability state for a freshly loaded dataset; checkpoint.

        The initial checkpoint is what makes the *load itself* durable
        (the WAL only carries deltas).  Failures are logged, not raised:
        the load already executed, and a response-time error would leave
        the client believing the dataset is absent.
        """
        try:
            handle, _scan = self._durability.attach(name)
            handle.checkpoint(
                self._engine.base(name), self._engine.stream_state(name)
            )
        except Exception as exc:
            log_event(
                _LOG,
                "error",
                "checkpoint.failed",
                dataset=name,
                error=str(exc),
            )

    def _checkpoint_if_due(self, name: str) -> None:
        try:
            self._durability.maybe_checkpoint(
                name, self._engine.base(name), self._engine.stream_state(name)
            )
        except Exception as exc:
            # The op itself succeeded and is WAL-covered; a failed
            # checkpoint costs replay time, not correctness.
            log_event(
                _LOG,
                "error",
                "checkpoint.failed",
                dataset=name,
                error=str(exc),
            )

    def _apply_replayed(self, dataset_name: str, record: Any) -> Response:
        """Replay one WAL record (recovery): execute without re-logging.

        The outcome is recorded in the idempotency window under the
        original request id, so a client retry that lands *after* the
        restart still dedupes against the pre-crash execution.
        """
        request = Request(
            op=record.op, params=record.params, request_id=record.request_id
        )
        response = self._execute(request)
        self._idempotency.record(record.request_id, response)
        return response

    def _mark_recovered(self, dataset_name: str, record: Any) -> None:
        """Reseed the dedup window for a checkpoint-covered WAL record.

        The record's effects are already inside the restored checkpoint,
        so it must not re-execute — but a client retrying it post-crash
        must still dedupe.  The original response payload was not
        persisted; the retry gets an acknowledgement marker instead.
        """
        if not record.request_id:
            return
        response = Response.success(
            {
                "deduplicated": True,
                "recovered": True,
                "op": record.op,
                "dataset": dataset_name,
                "wal_seq": record.seq,
            }
        ).with_request_id(record.request_id)
        self._idempotency.record(record.request_id, response)

    def recover(self) -> RecoveryReport | None:
        """Restore durable datasets (serve startup); returns the report."""
        if self._durability is None:
            return None
        from repro.durability.recovery import recover_all

        report = recover_all(
            self._durability,
            self._engine,
            self._apply_replayed,
            self._mark_recovered,
        )
        self.last_recovery = report
        return report

    def durability_status(self) -> dict | None:
        """Per-dataset WAL/checkpoint positions for /health, or None."""
        if self._durability is None:
            return None
        return {
            "data_dir": str(self._durability.data_dir),
            "datasets": self._durability.status(),
            "last_recovery": (
                self.last_recovery.as_dict()
                if self.last_recovery is not None
                else None
            ),
        }

    def close(self) -> None:
        """Release durability resources (WAL file handles)."""
        if self._durability is not None:
            self._durability.close()

    @staticmethod
    def _explain_requested(op: str, params: dict) -> bool:
        if "explain" not in params:
            return False
        if "explain" not in OPERATION_OPTIONS.get(op, ()):
            raise ProtocolError(f"operation {op!r} does not accept 'explain'")
        return as_bool_arg(params["explain"], "explain")

    def _attach_explain(
        self, op: str, params: dict, result: Any, trace: Any
    ) -> Any:
        explain: dict[str, Any] = {
            "request_id": trace.request_id,
            "duration_ms": trace.root.duration_ms,
            "spans": trace.as_dict(),
        }
        if op in _CASCADE_OPS:
            explain["stats"] = self._engine.last_query_stats(
                str(params["dataset"])
            )
        # Every explain-capable handler returns an object payload.
        result["explain"] = explain
        return result

    def _deadline(self, params: dict) -> Deadline | None:
        """Build the request's deadline from ``timeout_ms``/``allow_partial``.

        A request without ``timeout_ms`` inherits the server default; no
        budget anywhere means no deadline at all (``allow_partial`` alone
        is a no-op — there is nothing to degrade against).  The clock
        starts here, when the operation is dispatched, so queueing ahead
        of the engine does not silently eat the caller's budget.
        """
        timeout_ms = as_optional_timeout_ms(params.get("timeout_ms"))
        allow_partial = params.get("allow_partial")
        allow_partial = (
            False
            if allow_partial is None
            else as_bool_arg(allow_partial, "allow_partial")
        )
        if timeout_ms is None:
            timeout_ms = self._default_timeout_ms
        if timeout_ms is None:
            return None
        return Deadline.after(timeout_ms, allow_partial=allow_partial)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_list_datasets(self, params: dict) -> Any:
        return {"datasets": self._engine.dataset_names}

    def _op_load_dataset(self, params: dict) -> Any:
        source = str(params["source"])
        if source == "matters":
            indicators = params.get("indicators")
            dataset = build_matters_collection(
                seed=int(params.get("seed", 2013)),
                years=int(params.get("years", 25)),
                min_years=int(params.get("min_years", 8)),
                indicators=tuple(indicators) if indicators else None,
            )
        elif source == "electricity":
            dataset = build_electricity_collection(
                seed=int(params.get("seed", 417)),
                households=int(params.get("households", 8)),
            )
        elif source.startswith("ucr:"):
            dataset = load_ucr_file(source[len("ucr:") :])
        else:
            raise ProtocolError(
                f"unknown source {source!r} (use 'matters', 'electricity', "
                "or 'ucr:<path>')"
            )
        options = {k: params[k] for k in _LOAD_OPTIONS if k in params}
        if "num_workers" in options:
            options["num_workers"] = int(options["num_workers"])
        elif self._default_build_workers is not None:
            options["num_workers"] = self._default_build_workers
        if "build_executor" in options:
            options["build_executor"] = str(options["build_executor"])
        stats = self._engine.load_dataset(
            dataset, deadline=self._deadline(params), **options
        )
        return {
            "dataset": dataset.name,
            "series": len(dataset),
            "groups": stats.groups,
            "subsequences": stats.subsequences,
            "compaction_ratio": stats.compaction_ratio,
            "build_seconds": stats.build_seconds,
        }

    def _op_unload_dataset(self, params: dict) -> Any:
        self._engine.unload_dataset(str(params["dataset"]))
        return {"unloaded": params["dataset"]}

    def _op_describe(self, params: dict) -> Any:
        name = str(params["dataset"])
        info = self._engine.base(name).raw_dataset.describe()
        # Live base stats (not the load-time snapshot): incremental
        # ingestion updates the per-length breakdown in place.
        stats = self._engine.base(name).stats
        info["groups"] = stats.groups
        info["compaction_ratio"] = stats.compaction_ratio
        info["series_names"] = self._engine.base(name).dataset.names
        info["build_seconds"] = stats.build_seconds
        info["per_length"] = [s.as_dict() for s in stats.per_length]
        # Live structure fingerprint (unlike the engine's load-time
        # snapshot): the determinism handle the durability chaos suite
        # compares across a crash/recover boundary.
        info["structure_fingerprint"] = self._engine.base(
            name
        ).structure_fingerprint()
        return info

    def _op_overview(self, params: dict) -> Any:
        groups = self._engine.overview(
            str(params["dataset"]),
            length=params.get("length"),
            limit=int(params.get("limit", 50)),
        )
        return overview_payload(groups)

    def _op_query_preview(self, params: dict) -> Any:
        name = str(params["dataset"])
        series = self._engine.base(name).raw_dataset[str(params["series"])]
        start = int(params.get("start", 0))
        length = int(params.get("length", len(series) - start))
        return query_preview_payload(series, start, length)

    @staticmethod
    def _float_rows(values: Any, name: str = "values") -> list:
        """Coerce a JSON value list — flat (univariate) or nested
        ``[[c1, c2, ...], ...]`` rows (multichannel) — to plain floats."""
        if not isinstance(values, (list, tuple)):
            raise ProtocolError(f"'{name}' must be a list")
        if values and isinstance(values[0], (list, tuple)):
            return [[float(v) for v in row] for row in values]
        return [float(v) for v in values]

    @staticmethod
    def _metric(params: dict) -> str | None:
        """Validate an optional ``metric`` request option at the boundary.

        An unknown name fails here with the registry's ValidationError
        (listing the registered metrics) before any query work starts.
        """
        metric = params.get("metric")
        if metric is None:
            return None
        from repro.distances.registry import get_metric

        get_metric(str(metric))
        return str(metric)

    def _resolve_query(self, name: str, query: Any) -> Any:
        """Queries arrive as a value list or a brushed-series descriptor."""
        if isinstance(query, dict):
            return self._engine.query_from_series(
                name,
                str(query["series"]),
                int(query.get("start", 0)),
                query.get("length"),
            )
        return self._float_rows(query, "query")

    def _match_payload(self, name: str, query: Any, match: Any) -> dict:
        base = self._engine.base(name)
        query_values = (
            base.dataset.values(query)
            if hasattr(query, "series_index")
            else query
        )
        payload = similarity_view_payload(
            query_values, base.member_values(match.ref), match
        )
        payload["group"] = list(match.group)
        payload["exact"] = bool(match.exact)
        return payload

    def _op_best_match(self, params: dict) -> Any:
        name = str(params["dataset"])
        metric = self._metric(params)
        query = self._resolve_query(name, params["query"])
        match = self._engine.best_match(
            name, query, metric=metric, deadline=self._deadline(params)
        )
        return self._match_payload(name, query, match)

    def _op_k_best(self, params: dict) -> Any:
        name = str(params["dataset"])
        metric = self._metric(params)
        query = self._resolve_query(name, params["query"])
        matches = self._engine.k_best_matches(
            name,
            query,
            int(params["k"]),
            metric=metric,
            deadline=self._deadline(params),
        )
        return {"matches": [self._match_payload(name, query, m) for m in matches]}

    def _op_query_batch(self, params: dict) -> Any:
        """Many best-match queries in one request (one lock acquisition,
        one shared-state preparation, stacked kernel execution)."""
        name = str(params["dataset"])
        specs = params["queries"]
        if not isinstance(specs, list) or not specs:
            raise ProtocolError("'queries' must be a non-empty list")
        metric = self._metric(params)
        queries = [self._resolve_query(name, spec) for spec in specs]
        k = int(params.get("k", 1))
        per_query = self._engine.batch_best_matches(
            name, queries, k, metric=metric, deadline=self._deadline(params)
        )
        return {
            "results": [
                {"matches": [self._match_payload(name, q, m) for m in matches]}
                for q, matches in zip(queries, per_query)
            ]
        }

    def _op_matches_within(self, params: dict) -> Any:
        name = str(params["dataset"])
        metric = self._metric(params)
        query = self._resolve_query(name, params["query"])
        matches = self._engine.matches_within(
            name,
            query,
            float(params["threshold"]),
            metric=metric,
            deadline=self._deadline(params),
        )
        return {"matches": [self._match_payload(name, query, m) for m in matches]}

    def _op_seasonal(self, params: dict) -> Any:
        name = str(params["dataset"])
        series_name = str(params["series"])
        kwargs = {}
        for key in ("step", "min_occurrences", "max_patterns"):
            if key in params:
                kwargs[key] = int(params[key])
        for key in ("remove_level",):
            if key in params:
                kwargs[key] = bool(params[key])
        for key in ("ed_threshold",):
            if key in params:
                kwargs[key] = float(params[key])
        patterns = self._engine.seasonal_patterns(
            name,
            series_name,
            int(params["length"]),
            float(params["threshold"]) if "threshold" in params else None,
            deadline=self._deadline(params),
            **kwargs,
        )
        series = self._engine.base(name).raw_dataset[series_name]
        return seasonal_view_payload(series, patterns)

    def _op_sensitivity(self, params: dict) -> Any:
        name = str(params["dataset"])
        query = self._resolve_query(name, params["query"])
        profile = self._engine.similarity_profile(
            name,
            query,
            [float(t) for t in params["thresholds"]],
            verify=bool(params.get("verify", False)),
            deadline=self._deadline(params),
        )
        return profile.as_dict()

    def _op_add_series(self, params: dict) -> Any:
        from repro.data.timeseries import TimeSeries

        name = str(params["dataset"])
        series = TimeSeries(
            str(params["name"]),
            self._float_rows(params["values"]),
            metadata=params.get("metadata") or {},
        )
        return self._engine.add_series(name, series)

    def _op_append_points(self, params: dict) -> Any:
        return self._engine.append_points(
            str(params["dataset"]),
            str(params["series"]),
            self._float_rows(params["values"]),
            deadline=self._deadline(params),
        )

    def _op_register_monitor(self, params: dict) -> Any:
        name = str(params["dataset"])
        pattern = self._resolve_query(name, params["pattern"])
        # An explicit JSON null means the same as an absent key.
        epsilon = params.get("epsilon")
        series = params.get("series")
        monitor = params.get("monitor")
        return self._engine.register_monitor(
            name,
            pattern,
            float(epsilon) if epsilon is not None else None,
            series=str(series) if series is not None else None,
            name=str(monitor) if monitor is not None else None,
        )

    def _op_unregister_monitor(self, params: dict) -> Any:
        name = str(params["dataset"])
        self._engine.unregister_monitor(name, str(params["monitor"]))
        return {"unregistered": params["monitor"]}

    def _op_poll_events(self, params: dict) -> Any:
        name = str(params["dataset"])
        events = self._engine.poll_events(
            name,
            since=int(params.get("since", 0)),
            limit=int(params["limit"]) if "limit" in params else None,
        )
        # Read-only: never creates the stream machinery as a side effect.
        registry = self._engine.stream_registry(name)
        return {
            "events": [e.as_dict() for e in events],
            "last_seq": registry.last_seq if registry is not None else 0,
            "monitors": [
                registry.monitor(n).describe() for n in registry.monitor_names
            ]
            if registry is not None
            else [],
            "dropped": registry.dropped if registry is not None else 0,
        }

    def _op_flush_monitors(self, params: dict) -> Any:
        events = self._engine.flush_monitors(str(params["dataset"]))
        return {"events": [e.as_dict() for e in events]}

    def _op_save_base(self, params: dict) -> Any:
        name = str(params["dataset"])
        path = str(params["path"])
        self._engine.base(name).save(path)
        return {"saved": name, "path": path}

    def _op_thresholds(self, params: dict) -> Any:
        rec = self._engine.recommend_thresholds(
            str(params["dataset"]),
            int(params["length"]),
            samples=int(params.get("samples", 2000)),
            seed=int(params.get("seed", 0)),
        )
        return rec.as_dict()
