"""Supervisor: routes requests between the authoritative service and the pool.

:class:`Supervisor` wraps the single-process
:class:`~repro.server.service.OnexService` (which stays authoritative
for every mutation, the durability layer, and streaming state) and a
:class:`~repro.server.pool.WorkerPool` of forked read-only replicas.
It duck-types the service's surface, so the HTTP front end and the CLI
drive either one identically — single-process mode remains the default
and bit-identical, multi-process is ``serve --workers N``.

Routing:

- Operations in
  :data:`~repro.server.protocol.POOL_DISPATCHED_OPERATIONS` whose
  dataset has a current snapshot go to a worker.
- Everything else — mutations, dataset lifecycle, streaming — executes
  in the supervisor's own service.

Read-your-writes across processes comes from *lazy republication*: a
successful mutation marks its dataset dirty, and the next dispatched
read first republishes the base as a fresh ``epoch-<n>`` mmap snapshot
(:func:`~repro.core.mmap_layout.save_base_snapshot`) and broadcasts a
``remap`` to every worker before any of them answers again.  The HTTP
layer's per-dataset read/write lock already serialises mutations
against reads, so the base is quiescent while it is being published;
the per-dataset publish mutex only collapses concurrent readers onto a
single publication.  Superseded epochs are deleted immediately — a
worker still mapping one keeps the inode alive until it remaps.

Failure surface: :class:`~repro.exceptions.OverloadedError` (no live
workers / all busy) and :class:`~repro.exceptions.WorkerCrashedError`
(a worker died holding a non-read-only dispatch) propagate out of
:meth:`handle` for the HTTP layer to map to ``503 + Retry-After``.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path
from typing import Any

from repro.core.mmap_layout import clean_stale_snapshots, save_base_snapshot
from repro.exceptions import PersistenceError
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.server.pool import WorkerPool
from repro.server.protocol import POOL_DISPATCHED_OPERATIONS, Request, Response
from repro.server.service import OnexService

__all__ = ["Supervisor"]

_LOG = get_logger("supervisor")

_PUBLISH_TOTAL = REGISTRY.counter(
    "onex_pool_snapshot_publish_total",
    "Base snapshots published to the worker pool, per dataset",
)
_PUBLISH_MS = REGISTRY.histogram(
    "onex_pool_snapshot_publish_ms", "Snapshot publication latency"
)


def _dataset_slug(name: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", name)[:48]
    digest = hashlib.sha1(name.encode()).hexdigest()[:8]
    return f"{safe}-{digest}"


class _Publication:
    """Publish state of one dataset: current epoch dir + dirty flag."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.epoch = 0
        self.path: Path | None = None
        self.fingerprint: str | None = None
        self.dirty = True


class Supervisor:
    """The pre-fork process manager; a drop-in ``OnexService`` facade.

    *service* stays the single authority for mutations and durability.
    *snapshot_root* holds the published mmap snapshots
    (``<root>/<slug>/epoch-<n>``); stale debris from a previous crashed
    run is swept on :meth:`start`.  *pool_options* passes tuning knobs
    (backoff, heartbeat, flap detection) through to
    :class:`~repro.server.pool.WorkerPool`.
    """

    def __init__(
        self,
        service: OnexService,
        *,
        workers: int,
        snapshot_root: str | Path,
        query_config_kwargs: dict | None = None,
        default_timeout_ms: float | None = None,
        pool_options: dict | None = None,
    ) -> None:
        self._service = service
        self._root = Path(snapshot_root)
        self._pubs: dict[str, _Publication] = {}
        self._pubs_lock = threading.Lock()
        self._gate: Any = None
        self._gate_cap = 0
        self._started = False
        service_config: dict = {
            "query_config": dict(query_config_kwargs or {}),
        }
        if default_timeout_ms is not None:
            service_config["default_timeout_ms"] = default_timeout_ms
        self.pool = WorkerPool(
            workers,
            service_config=service_config,
            on_capacity_change=self._on_capacity_change,
            **(pool_options or {}),
        )

    # ------------------------------------------------------------------
    # Service facade (what the HTTP layer and CLI call)
    # ------------------------------------------------------------------

    @property
    def engine(self) -> Any:
        return self._service.engine

    @property
    def durability(self) -> Any:
        return self._service.durability

    @property
    def last_recovery(self) -> Any:
        return self._service.last_recovery

    def durability_status(self) -> dict | None:
        return self._service.durability_status()

    def recover(self) -> Any:
        return self._service.recover()

    def handle(self, request: Request | dict | str | bytes) -> Response:
        """Route one request; see the module docstring for the split.

        May raise ``OverloadedError`` / ``WorkerCrashedError`` when the
        pool cannot complete a dispatch — the HTTP layer maps both to
        ``503 + Retry-After``; every other failure is an envelope.
        """
        if not isinstance(request, Request):
            try:
                if isinstance(request, dict):
                    request = Request.from_dict(request)
                else:
                    request = Request.from_json(request)
            except Exception as exc:
                return Response.failure(exc)
        if self._started and request.op in POOL_DISPATCHED_OPERATIONS:
            dataset = str(request.params.get("dataset", ""))
            if dataset in self._service.engine.dataset_names:
                if self._ensure_published(dataset):
                    return self.pool.dispatch(request)
        response = self._service.handle(request)
        if response.ok:
            self._after_local_success(request)
        return response

    def close(self) -> None:
        self.pool.stop()
        self._service.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, *, timeout: float | None = 60.0) -> "Supervisor":
        """Sweep stale snapshots, publish loaded datasets, start workers."""
        removed = clean_stale_snapshots(self._root)
        if removed:
            log_event(
                _LOG, "info", "supervisor.swept_stale", removed=len(removed)
            )
        self._started = True
        for name in self._service.engine.dataset_names:
            try:
                self._ensure_published(name)
            except Exception as exc:
                log_event(
                    _LOG,
                    "error",
                    "supervisor.initial_publish_failed",
                    dataset=name,
                    error=str(exc),
                )
        self.pool.start()
        live = self.pool.wait_live(timeout)
        log_event(
            _LOG,
            "info",
            "supervisor.started",
            workers=self.pool.size,
            live=live,
        )
        return self

    def stop(self) -> None:
        self.pool.stop()

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Health / status
    # ------------------------------------------------------------------

    def pool_status(self) -> dict:
        status = self.pool.status()
        with self._pubs_lock:
            status["published"] = {
                name: {
                    "epoch": pub.epoch,
                    "dirty": pub.dirty,
                    "path": str(pub.path) if pub.path is not None else None,
                }
                for name, pub in sorted(self._pubs.items())
            }
        return status

    def attach_gate(self, gate: Any) -> None:
        """Wire the HTTP admission gate for degraded-capacity scaling.

        The gate's configured cap is treated as the full-capacity
        in-flight budget; it shrinks proportionally as workers die and
        recovers as they restart (never below 1 — the supervisor itself
        can always serve non-dispatched operations).
        """
        self._gate = gate
        self._gate_cap = int(getattr(gate, "max_in_flight", 0))
        self._on_capacity_change(self.pool.live_workers, self.pool.size)

    def _on_capacity_change(self, live: int, size: int) -> None:
        gate = self._gate
        if gate is None or self._gate_cap <= 0 or size <= 0:
            return
        scaled = max(1, round(self._gate_cap * max(live, 1) / size))
        try:
            gate.resize(scaled)
        except Exception as exc:
            log_event(_LOG, "error", "supervisor.gate_resize", error=str(exc))
        else:
            log_event(
                _LOG,
                "info",
                "supervisor.capacity",
                live=live,
                size=size,
                max_in_flight=scaled,
            )

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def _publication(self, name: str) -> _Publication:
        with self._pubs_lock:
            pub = self._pubs.get(name)
            if pub is None:
                pub = self._pubs[name] = _Publication()
            return pub

    def _ensure_published(self, name: str) -> bool:
        """Publish *name*'s base if it has no current snapshot.

        Returns ``True`` when a fresh snapshot is announced to the pool
        (dispatch may proceed), ``False`` when publication failed — the
        caller then executes locally, which is degraded but correct.
        """
        pub = self._publication(name)
        if not pub.dirty and pub.path is not None:
            return True
        with pub.lock:
            if not pub.dirty and pub.path is not None:
                return True
            try:
                self._publish_locked(name, pub)
            except (PersistenceError, OSError) as exc:
                log_event(
                    _LOG,
                    "error",
                    "supervisor.publish_failed",
                    dataset=name,
                    error=str(exc),
                )
                return False
        return True

    def _publish_locked(self, name: str, pub: _Publication) -> None:
        import time as _time

        started = _time.monotonic()
        base = self._service.engine.base(name)
        dataset_dir = self._root / _dataset_slug(name)
        dataset_dir.mkdir(parents=True, exist_ok=True)
        if pub.epoch == 0:  # first publish this run: resume numbering
            existing = [
                int(p.name[len("epoch-") :])
                for p in dataset_dir.iterdir()
                if p.is_dir()
                and p.name.startswith("epoch-")
                and p.name[len("epoch-") :].isdigit()
            ]
            pub.epoch = max(existing, default=0)
        epoch = pub.epoch + 1
        path = save_base_snapshot(base, dataset_dir / f"epoch-{epoch}")
        with open(path / "meta.json") as fh:
            fingerprint = json.load(fh)["structure_fingerprint"]
        self.pool.remap(name, str(path), fingerprint)
        old = pub.path
        pub.epoch = epoch
        pub.path = path
        pub.fingerprint = fingerprint
        pub.dirty = False
        if old is not None and old != path:
            import shutil

            # Safe while workers still map it: the inode outlives the
            # directory entry until the last worker remaps.
            shutil.rmtree(old, ignore_errors=True)
        elapsed_ms = (_time.monotonic() - started) * 1000.0
        _PUBLISH_TOTAL.inc(dataset=name)
        _PUBLISH_MS.observe(elapsed_ms)
        log_event(
            _LOG,
            "info",
            "supervisor.published",
            dataset=name,
            epoch=epoch,
            ms=round(elapsed_ms, 2),
        )

    def _after_local_success(self, request: Request) -> None:
        """Keep publication state consistent after a local mutation."""
        op = request.op
        if op in ("add_series", "append_points"):
            name = str(request.params.get("dataset", ""))
            pub = self._publication(name)
            pub.dirty = True
        elif op == "load_dataset":
            # The dataset name comes from the source, not the params;
            # mark every unpublished dataset dirty (cheap, idempotent).
            for name in self._service.engine.dataset_names:
                self._publication(name)
        elif op == "unload_dataset":
            name = str(request.params.get("dataset", ""))
            with self._pubs_lock:
                pub = self._pubs.pop(name, None)
            if pub is not None:
                self.pool.unload(name)
                if pub.path is not None:
                    import shutil

                    shutil.rmtree(pub.path.parent, ignore_errors=True)
