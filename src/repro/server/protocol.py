"""Typed JSON envelopes for the client/server API.

A request is ``{"op": <operation>, "params": {...}}`` with an optional
``"request_id"`` correlation string; a response is ``{"ok": true,
"result": ...}`` or ``{"ok": false, "error": {"type": ..., "message":
...}}``, echoing the request's ``request_id`` when one was assigned
(clients mint one per call; the server mints one for bare requests).
Parsing is strict: unknown operations, missing parameters, and
non-object envelopes raise :class:`ProtocolError` before any engine
code runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ProtocolError

__all__ = [
    "DURABLE_OPERATIONS",
    "OPERATIONS",
    "OPERATION_OPTIONS",
    "POOL_DISPATCHED_OPERATIONS",
    "READ_ONLY_OPERATIONS",
    "Request",
    "Response",
]

#: Operation name -> required parameter names.
OPERATIONS: dict[str, tuple[str, ...]] = {
    "list_datasets": (),
    "load_dataset": ("source",),
    "describe": ("dataset",),
    "overview": ("dataset",),
    "query_preview": ("dataset", "series"),
    "best_match": ("dataset", "query"),
    "k_best": ("dataset", "query", "k"),
    "query_batch": ("dataset", "queries"),
    "matches_within": ("dataset", "query", "threshold"),
    "seasonal": ("dataset", "series", "length"),
    "sensitivity": ("dataset", "query", "thresholds"),
    "thresholds": ("dataset", "length"),
    "unload_dataset": ("dataset",),
    "save_base": ("dataset", "path"),
    "add_series": ("dataset", "name", "values"),
    "append_points": ("dataset", "series", "values"),
    "register_monitor": ("dataset", "pattern"),
    "unregister_monitor": ("dataset", "monitor"),
    "poll_events": ("dataset",),
    "flush_monitors": ("dataset",),
}

#: Optional deadline parameters accepted by the long-running operations
#: (validated in the service layer, :mod:`repro.core.validation`):
#:
#: ``timeout_ms``
#:     Positive, finite millisecond budget for the whole operation,
#:     checked cooperatively at the engine's chunk boundaries.  An
#:     exceeded budget returns a structured ``DeadlineExceeded`` error
#:     whose ``details`` report the stage reached, progress counters, and
#:     the best verified candidate so far.
#: ``allow_partial``
#:     Boolean.  Operations that support graceful degradation (the
#:     query family, seasonal mining) return their best verified partial
#:     result — matches flagged ``"exact": false`` — instead of erroring.
#:     The sensitivity profile and ``load_dataset`` always raise: a
#:     partial profile or a partially built base would be misleading.
#: ``explain``
#:     Boolean (query family + analytics).  The operation runs inside an
#:     activated trace and the result payload carries an ``"explain"``
#:     object — request ID, span tree, and cascade counters.  Tracing is
#:     pure observation: the matches are bit-identical to the
#:     unexplained call (property-tested).
#: ``metric``
#:     Distance metric name (query family).  Must be registered in
#:     :data:`repro.distances.registry.REGISTRY` (e.g. ``"dtw"``,
#:     ``"euclidean"``, ``"cityblock"``, ``"chebyshev"``,
#:     ``"derivative_dtw"``, ``"weighted_dtw"``); unknown names fail
#:     with a ``ValidationError`` before any query work runs.  Omitted,
#:     the server's configured default (DTW) applies.
OPERATION_OPTIONS: dict[str, tuple[str, ...]] = {
    "best_match": ("timeout_ms", "allow_partial", "explain", "metric"),
    "k_best": ("timeout_ms", "allow_partial", "explain", "metric"),
    "query_batch": ("timeout_ms", "allow_partial", "explain", "metric"),
    "matches_within": ("timeout_ms", "allow_partial", "explain", "metric"),
    "seasonal": ("timeout_ms", "allow_partial", "explain"),
    "sensitivity": ("timeout_ms", "explain"),
    "load_dataset": ("timeout_ms",),
    "append_points": ("timeout_ms",),
}

#: Operations that only read engine state.  The HTTP front end grants
#: these a shared (read) lock on their target dataset so concurrent
#: exploration never serialises; every other operation mutates and takes
#: the exclusive (write) side.
READ_ONLY_OPERATIONS: frozenset[str] = frozenset(
    {
        "list_datasets",
        "describe",
        "overview",
        "query_preview",
        "best_match",
        "k_best",
        "query_batch",
        "matches_within",
        "seasonal",
        "sensitivity",
        "thresholds",
        "poll_events",
    }
)

#: Read-only operations the supervisor hands to pool workers: everything
#: answerable from an mmap-attached base snapshot alone.
#: ``list_datasets`` and ``poll_events`` stay supervisor-local — the
#: dataset table and the streaming event registry live in the supervisor
#: process, not in the published snapshots.  A worker crash mid-dispatch
#: re-dispatches any of these transparently (they provably ran read-only).
POOL_DISPATCHED_OPERATIONS: frozenset[str] = frozenset(
    {
        "describe",
        "overview",
        "query_preview",
        "best_match",
        "k_best",
        "query_batch",
        "matches_within",
        "seasonal",
        "sensitivity",
        "thresholds",
    }
)

#: Mutating operations covered by the durability layer: each is recorded
#: in the dataset's write-ahead log *before* it is acknowledged, and its
#: outcome is remembered per ``request_id`` in the idempotency window —
#: which is what makes a client retry of one of these safe (a duplicate
#: request id returns the recorded response instead of re-executing).
#: ``load_dataset``/``unload_dataset`` are deliberately absent: loading
#: is made durable by its initial checkpoint, not by WAL replay, and
#: unloading deletes the durable state outright.
DURABLE_OPERATIONS: frozenset[str] = frozenset(
    {
        "append_points",
        "add_series",
        "register_monitor",
        "unregister_monitor",
    }
)


@dataclass(frozen=True)
class Request:
    """A validated client request.

    ``request_id`` is an optional caller-minted correlation string; it
    is echoed in the response envelope, the ``X-Request-Id`` header, and
    every structured log line the request produces.
    """

    op: str
    params: dict[str, Any] = field(default_factory=dict)
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ProtocolError(
                f"unknown operation {self.op!r} (known: {sorted(OPERATIONS)})"
            )
        missing = [name for name in OPERATIONS[self.op] if name not in self.params]
        if missing:
            raise ProtocolError(f"operation {self.op!r} missing params: {missing}")
        if self.request_id is not None and (
            not isinstance(self.request_id, str) or not self.request_id
        ):
            raise ProtocolError("'request_id' must be a non-empty string")

    @classmethod
    def from_json(cls, text: str | bytes) -> "Request":
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            # Binary bodies can fail inside codec detection before JSON
            # parsing proper, hence the wider net.
            raise ProtocolError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_dict(cls, payload: Any) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        if "op" not in payload:
            raise ProtocolError("request missing 'op'")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        extra = set(payload) - {"op", "params", "request_id"}
        if extra:
            raise ProtocolError(f"unexpected request fields: {sorted(extra)}")
        return cls(
            op=str(payload["op"]),
            params=params,
            request_id=payload.get("request_id"),
        )

    def to_json(self) -> str:
        envelope: dict[str, Any] = {"op": self.op, "params": self.params}
        if self.request_id is not None:
            envelope["request_id"] = self.request_id
        return json.dumps(envelope)


@dataclass(frozen=True)
class Response:
    """A server response: a result or a typed error.

    ``error_details`` carries an optional structured payload alongside
    the type/message pair — e.g. a ``DeadlineExceeded``'s stage,
    progress counters, and best verified candidate.
    """

    ok: bool
    result: Any = None
    error_type: str | None = None
    error_message: str | None = None
    error_details: dict | None = None
    request_id: str | None = None

    def with_request_id(self, request_id: str | None) -> "Response":
        """A copy echoing *request_id* (no-op when none was assigned)."""
        if request_id is None:
            return self
        return replace(self, request_id=request_id)

    @classmethod
    def success(cls, result: Any) -> "Response":
        return cls(ok=True, result=result)

    @classmethod
    def failure(cls, exc: Exception) -> "Response":
        details = None
        details_fn = getattr(exc, "details", None)
        if callable(details_fn):
            try:
                details = details_fn()
            except Exception:
                details = None
        return cls(
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
            error_details=details,
        )

    @classmethod
    def internal_error(cls, exc: Exception) -> "Response":
        """Envelope for unexpected (non-contract) failures.

        The error type is the stable ``"InternalError"`` marker — clients
        must not dispatch on arbitrary exception class names leaking out
        of library internals — with the original type preserved in the
        message for debugging.
        """
        return cls(
            ok=False,
            error_type="InternalError",
            error_message=f"{type(exc).__name__}: {exc}",
        )

    def to_dict(self) -> dict:
        if self.ok:
            envelope: dict[str, Any] = {"ok": True, "result": self.result}
        else:
            error: dict[str, Any] = {
                "type": self.error_type,
                "message": self.error_message,
            }
            if self.error_details is not None:
                error["details"] = self.error_details
            envelope = {"ok": False, "error": error}
        if self.request_id is not None:
            envelope["request_id"] = self.request_id
        return envelope

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str | bytes) -> "Response":
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "ok" not in payload:
            raise ProtocolError("response must be an object with 'ok'")
        request_id = payload.get("request_id")
        if payload["ok"]:
            return cls(
                ok=True, result=payload.get("result"), request_id=request_id
            )
        error = payload.get("error") or {}
        return cls(
            ok=False,
            error_type=error.get("type"),
            error_message=error.get("message"),
            error_details=error.get("details"),
            request_id=request_id,
        )
