"""HTTP client for the ONEX server, with overload-aware retries.

:class:`OnexClient` speaks the :mod:`repro.server.protocol` envelopes
over plain urllib (stdlib only, like the server).  Its retry policy:

- **Read-only** operations (``protocol.READ_ONLY_OPERATIONS``) are
  always retryable: a shed request (503) provably never executed, and a
  replayed query is harmless.
- **Durable mutating** operations (``protocol.DURABLE_OPERATIONS``) are
  retryable since the server dedupes them by ``request_id``: every call
  mints one ID and re-sends it verbatim on each retry, so a connection
  that died after the server executed yields the *recorded* response on
  replay, never a double mutation.  ``retry_mutating=False`` restores
  the old fail-fast behaviour (e.g. against a pre-durability server).
- Everything else (``load_dataset``, ``save_base``, ...) fails fast and
  leaves the decision to the caller.
- Retries back off exponentially with full jitter; a server-sent
  ``Retry-After`` hint is honoured as the floor of the next delay; the
  *total* time spent waiting between attempts is bounded by
  ``retry_budget_s`` so a retrying call cannot stall unboundedly.
- An exhausted budget raises :class:`~repro.exceptions.OverloadedError`
  (for sheds) or the underlying transport error, never a silent retry
  loop.

Server-reported application errors arrive as
:class:`~repro.exceptions.RemoteError` carrying the server's error type
and structured details (e.g. a remote ``DeadlineExceeded``'s progress
snapshot).

``metrics()`` reports the client's own call statistics (attempts,
retries, last request IDs — including a ``mutating`` sub-object for the
idempotent-retry path); the server's Prometheus exposition moved to
``scrape_metrics()``.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Callable
from typing import Any

from repro.exceptions import OverloadedError, ProtocolError, RemoteError
from repro.obs.trace import new_request_id
from repro.server.protocol import (
    DURABLE_OPERATIONS,
    READ_ONLY_OPERATIONS,
    Request,
    Response,
)

__all__ = ["OnexClient"]


class OnexClient:
    """Calls one ONEX server; safe retries for idempotent operations.

    *max_retries* bounds the re-sends after the first attempt;
    *backoff_base_s*/*backoff_cap_s* shape the jittered exponential
    delays and *retry_budget_s* bounds their total; *retry_mutating*
    extends retries to the durable (request-id-deduplicated) mutating
    operations.  *sleep* and *rng* exist for deterministic tests.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout_s: float = 30.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        retry_budget_s: float = 15.0,
        retry_mutating: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.retry_budget_s = float(retry_budget_s)
        self.retry_mutating = bool(retry_mutating)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self.calls = 0
        self.retries_performed = 0
        #: Operation and attempt count of the most recent ``call()``.
        self.last_op: str | None = None
        self.last_attempts = 0
        #: Correlation ID minted for the most recent ``call()``.
        self.last_request_id: str | None = None
        #: ``request_id`` echoed in the most recent response envelope.
        self.last_response_request_id: str | None = None
        self._mutating_stats = {
            "calls": 0,
            "retries": 0,
            "last_op": None,
            "last_attempts": 0,
            "last_request_id": None,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def call(self, op: str, params: dict | None = None) -> Any:
        """Execute one operation; returns the result payload.

        Raises :class:`RemoteError` for server-reported failures,
        :class:`OverloadedError` when the server keeps shedding past the
        retry budget, and the transport error when the connection fails
        on a non-retryable operation.
        """
        # One ID per logical call, re-sent verbatim on every retry, so
        # the server can correlate — and for durable mutating ops
        # deduplicate — replays of the same request.
        request_id = new_request_id()
        request = Request(op, dict(params or {}), request_id=request_id)
        self.calls += 1
        self.last_op = op
        self.last_request_id = request_id
        mutating = op in DURABLE_OPERATIONS
        if mutating:
            self._mutating_stats["calls"] += 1
            self._mutating_stats["last_op"] = op
            self._mutating_stats["last_request_id"] = request_id
        body = request.to_json().encode()
        retryable = op in READ_ONLY_OPERATIONS or (
            mutating and self.retry_mutating
        )
        budget_expires = time.monotonic() + self.retry_budget_s
        attempt = 0
        while True:
            self._record_attempts(attempt + 1, mutating)
            try:
                status, headers, payload = self._post(body)
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                if not self._may_retry(retryable, attempt, budget_expires):
                    raise
                self._backoff(attempt, None, budget_expires, mutating)
                attempt += 1
                continue
            if status == 503:
                retry_after = _parse_retry_after(headers)
                if not self._may_retry(retryable, attempt, budget_expires):
                    raise OverloadedError(
                        f"server overloaded after {attempt + 1} attempt(s)",
                        retry_after=retry_after,
                    )
                self._backoff(attempt, retry_after, budget_expires, mutating)
                attempt += 1
                continue
            response = Response.from_json(payload)
            self.last_response_request_id = response.request_id
            if response.ok:
                return response.result
            raise RemoteError(
                response.error_type or "UnknownError",
                response.error_message or "",
                response.error_details,
            )

    def health(self) -> dict:
        """The server's ``/health`` payload (never retried)."""
        return self._get("/health")

    def ready(self) -> bool:
        """Whether the server currently admits requests (``/ready``)."""
        try:
            return bool(self._get("/ready").get("ready"))
        except urllib.error.HTTPError as exc:
            if exc.code == 503:  # draining: a well-formed "not ready"
                return False
            raise

    def pool_status(self) -> dict | None:
        """The worker pool's per-slot state from ``/health``.

        ``None`` against a single-process server (no pool section).
        Keys: ``size``, ``live``, ``failovers``, and ``workers`` —
        one ``{slot, pid, state, restarts, crashes}`` per seat.
        """
        return self.health().get("pool")

    def metrics(self) -> dict:
        """This client's own call statistics.

        ``mutating`` sub-object tracks the idempotent-retry path:
        attempts and the last request id a durable mutating call minted
        (the key its retries dedupe under server-side).
        """
        return {
            "calls": self.calls,
            "retries_performed": self.retries_performed,
            "last_op": self.last_op,
            "last_attempts": self.last_attempts,
            "last_request_id": self.last_request_id,
            "last_response_request_id": self.last_response_request_id,
            "mutating": dict(self._mutating_stats),
        }

    def scrape_metrics(self) -> str:
        """The server's ``/metrics`` Prometheus exposition text (never
        retried); parse with :func:`repro.obs.metrics.parse_exposition`."""
        with urllib.request.urlopen(
            f"{self.url}/metrics", timeout=self.timeout_s
        ) as resp:
            return resp.read().decode()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _post(self, body: bytes) -> tuple[int, dict, bytes]:
        req = urllib.request.Request(
            f"{self.url}/api",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            # Protocol-level statuses (400 envelopes, 503 sheds) are
            # responses, not transport failures.
            return exc.code, dict(exc.headers or {}), exc.read()

    def _get(self, path: str) -> dict:
        with urllib.request.urlopen(
            f"{self.url}{path}", timeout=self.timeout_s
        ) as resp:
            payload = json.loads(resp.read())
        if not isinstance(payload, dict):
            raise ProtocolError(f"{path} returned a non-object payload")
        return payload

    def _record_attempts(self, attempts: int, mutating: bool) -> None:
        self.last_attempts = attempts
        if mutating:
            self._mutating_stats["last_attempts"] = attempts

    def _may_retry(
        self, retryable: bool, attempt: int, budget_expires: float
    ) -> bool:
        return (
            retryable
            and attempt < self.max_retries
            and time.monotonic() < budget_expires
        )

    def _backoff(
        self,
        attempt: int,
        retry_after: float | None,
        budget_expires: float,
        mutating: bool = False,
    ) -> None:
        """Sleep before re-sending: jittered exponential, floored at the
        server's ``Retry-After`` hint, capped to the remaining budget."""
        cap = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        delay = self._rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, retry_after)
        remaining = budget_expires - time.monotonic()
        delay = min(delay, max(0.0, remaining))
        self.retries_performed += 1
        if mutating:
            self._mutating_stats["retries"] += 1
        if delay > 0:
            self._sleep(delay)


def _parse_retry_after(headers: dict) -> float | None:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except (TypeError, ValueError):
                return None
    return None
