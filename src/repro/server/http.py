"""Stdlib-only HTTP front end for the ONEX service.

Endpoints:

- ``POST /api`` — a protocol request as the JSON body; returns the
  response envelope.  Engine errors map to 200-with-``ok: false`` (they
  are application results); malformed envelopes map to 400; requests the
  admission gate sheds map to 503 with a ``Retry-After`` header and an
  ``OverloadedError`` envelope.
- ``GET /health`` — liveness plus loaded dataset names (with build-base
  fingerprints), server version and uptime, in-flight and shed counts,
  and per-operation p50/p99 latency from a ring buffer.
- ``GET /ready`` — 200 while the gate admits requests, 503 once the
  server is draining for shutdown (load balancers stop routing here
  before ``stop()`` aborts anything).
- ``GET /metrics`` — the process-wide observability registry
  (:mod:`repro.obs.metrics`) in Prometheus text exposition format:
  engine counters (queries, cascade work, builds, streaming) plus the
  server-side request counter/latency histogram and gate gauges.

Every ``/api`` response carries a correlation ID: the client's
``request_id`` when the envelope had one, else one minted here before
the service runs.  It is echoed in the JSON envelope, the
``X-Request-Id`` header, and the structured log lines the request
produces.

Probe endpoints (``/health``, ``/ready``, ``/metrics``) bypass the
admission gate on purpose: an overloaded or draining server must still
answer its scrapers.

Concurrency model: one reader/writer lock per loaded dataset, plus a
registry-level lock guarding the dataset table itself.  Read-only
operations (``protocol.READ_ONLY_OPERATIONS``) take the shared side, so
any number of concurrent queries — against one dataset or several —
proceed in parallel; mutating operations (loads, series appends, monitor
registration, saves) take the exclusive side of their dataset only, and
``load_dataset``/``unload_dataset`` exclusively lock the registry because
they change the table every other request routes through.

Overload model: ahead of the locks sits an :class:`AdmissionGate` — at
most *max_in_flight* requests execute while up to *max_queue* wait; any
further arrival is shed immediately with a structured 503 instead of
stacking an unbounded number of handler threads onto the engine.  A shed
request did not execute at all, so retrying it (the client helper in
:mod:`repro.server.client` does, for read-only operations) is always
safe.

Throughput-sensitive clients should prefer ``query_batch`` over a stream
of single-query requests: one request pays the HTTP round trip, JSON
envelope, and lock acquisition once for the whole batch, and the engine's
multi-query planner stacks the batch's kernel work (see
``QueryProcessor.batch_matches``) — it holds the same shared read lock,
so it never blocks other readers.

The server runs on a daemon thread (``start()``/``stop()``), which is how
the examples and integration tests drive a real client/server round trip
in-process.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import repro
from repro.exceptions import (
    NotReadyError,
    OverloadedError,
    ProtocolError,
    ShutdownTimeoutError,
    StartupError,
    ValidationError,
    WorkerCrashedError,
)
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import new_request_id
from repro.server.protocol import READ_ONLY_OPERATIONS, Request, Response
from repro.server.service import OnexService
from repro.testing import faults

__all__ = [
    "AdmissionGate",
    "DatasetLockManager",
    "OnexHttpServer",
    "ReadWriteLock",
]

_LOG = get_logger("server")

_REQUESTS_TOTAL = REGISTRY.counter(
    "onex_server_requests_total",
    "HTTP API requests by operation and response status code",
)
_REQUEST_MS = REGISTRY.histogram(
    "onex_server_request_ms",
    "HTTP API request wall time per operation (milliseconds)",
)
_SHED_TOTAL = REGISTRY.counter(
    "onex_server_shed_total", "Requests rejected by the admission gate"
)
_IN_FLIGHT = REGISTRY.gauge(
    "onex_server_in_flight", "Requests currently executing or queued"
)
_UPTIME = REGISTRY.gauge(
    "onex_server_uptime_seconds", "Seconds since the HTTP server was created"
)
_INFO = REGISTRY.gauge(
    "onex_server_info", "Constant 1; the version label carries the build"
)


class ReadWriteLock:
    """A fair-enough reader/writer lock built on one condition variable.

    Any number of readers share the lock; a writer is exclusive.  Waiting
    writers block new readers (writer preference), so a stream of
    overlapping queries cannot starve an append.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """Context-managed shared acquisition."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Context-managed exclusive acquisition."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class DatasetLockManager:
    """Per-dataset reader/writer locks behind one registry lock.

    ``guard(request)`` yields with the right locks held for one protocol
    request: registry-exclusive for load/unload, else registry-shared
    plus the target dataset's lock in the mode the operation needs.
    *known* (a callable returning the loaded dataset names) bounds the
    lock table: a request naming an unknown dataset gets a throwaway lock
    — the engine raises its own error under it — so garbage names from
    unauthenticated input cannot grow the table; unload drops entries.
    """

    def __init__(self, known: Callable[[], Iterable[str]] | None = None) -> None:
        self._mutex = threading.Lock()
        self._registry = ReadWriteLock()
        self._locks: dict[str, ReadWriteLock] = {}
        self._known = known

    def _lock_for(self, dataset: str) -> ReadWriteLock:
        with self._mutex:
            lock = self._locks.get(dataset)
            if lock is None:
                lock = ReadWriteLock()
                # Callers hold the registry read-side, so the loaded set
                # cannot change under this membership check.
                if self._known is None or dataset in self._known():
                    self._locks[dataset] = lock
            return lock

    def drop(self, dataset: str) -> None:
        with self._mutex:
            self._locks.pop(dataset, None)

    @contextmanager
    def registry_read(self) -> Iterator[None]:
        """Shared hold on the dataset table (e.g. the health endpoint)."""
        with self._registry.read():
            yield

    @contextmanager
    def guard(self, request: Request) -> Iterator[None]:
        """Hold the locks one request needs for its whole execution."""
        if request.op in ("load_dataset", "unload_dataset"):
            with self._registry.write():
                yield
                # Drop while still holding the registry exclusively: doing
                # it after release would race a reload handing out a second
                # lock object for the same name.
                if request.op == "unload_dataset":
                    self.drop(str(request.params.get("dataset")))
            return
        dataset = request.params.get("dataset")
        with self._registry.read():
            if dataset is None:
                yield
                return
            lock = self._lock_for(str(dataset))
            if request.op in READ_ONLY_OPERATIONS:
                with lock.read():
                    yield
            else:
                with lock.write():
                    yield


class AdmissionGate:
    """Bounded admission for request handlers: execute, queue, or shed.

    At most *max_in_flight* requests execute concurrently; up to
    *max_queue* more wait their turn; anything beyond that is shed
    (``try_acquire`` returns False) so overload produces fast structured
    503s instead of an unbounded pile of handler threads all contending
    for the engine.  ``close()`` flips the gate into draining mode: new
    arrivals and parked waiters are shed immediately, and ``wait_idle``
    lets a shutdown path watch the in-flight count reach zero.
    """

    def __init__(self, max_in_flight: int = 8, max_queue: int = 16) -> None:
        if not isinstance(max_in_flight, int) or max_in_flight < 1:
            raise ValidationError(
                f"max_in_flight must be a positive int, got {max_in_flight!r}"
            )
        if not isinstance(max_queue, int) or max_queue < 0:
            raise ValidationError(
                f"max_queue must be a non-negative int, got {max_queue!r}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._in_flight = 0
        self._waiting = 0
        self._open = True
        self._shed = 0

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def shed(self) -> int:
        """Requests rejected (queue full or gate draining) so far."""
        with self._cond:
            return self._shed

    @property
    def is_open(self) -> bool:
        with self._cond:
            return self._open

    def try_acquire(self) -> bool:
        """Take an execution slot, waiting in the bounded queue if needed.

        False means the request was shed and must not execute.
        """
        with self._cond:
            if not self._open:
                self._shed += 1
                return False
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                return True
            if self._waiting >= self.max_queue:
                self._shed += 1
                return False
            self._waiting += 1
            try:
                while self._open and self._in_flight >= self.max_in_flight:
                    self._cond.wait()
            finally:
                self._waiting -= 1
            if not self._open:
                self._shed += 1
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()

    def resize(self, max_in_flight: int) -> None:
        """Change the concurrency cap in place (degraded-capacity mode).

        The supervisor calls this as pool workers die and restart, so
        the in-flight budget tracks live serving capacity.  Shrinking
        never aborts requests already executing — the gate simply admits
        nothing new until the count drains below the new cap; growing
        wakes parked waiters immediately.
        """
        if not isinstance(max_in_flight, int) or max_in_flight < 1:
            raise ValidationError(
                f"max_in_flight must be a positive int, got {max_in_flight!r}"
            )
        with self._cond:
            self.max_in_flight = max_in_flight
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admitting: shed new arrivals and wake parked waiters."""
        with self._cond:
            self._open = False
            self._cond.notify_all()

    def wait_idle(self, timeout: float) -> int:
        """Block until no request is in flight; returns the leftover count
        (0 on a clean drain) once *timeout* seconds have elapsed."""
        expires_at = time.monotonic() + timeout
        with self._cond:
            while self._in_flight:
                remaining = expires_at - time.monotonic()
                if remaining <= 0:
                    return self._in_flight
                self._cond.wait(remaining)
            return 0


def _quantile(ordered: list[float], q: float) -> float | None:
    """Nearest-rank quantile of an already-sorted non-empty list."""
    if not ordered:
        return None
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class _ServerMetrics:
    """Per-operation latency rings plus a total-handled counter.

    Rings are bounded (*ring_size* most recent samples per operation), so
    the health endpoint's p50/p99 reflect recent behaviour and memory
    stays O(operations), not O(requests).  ``record`` also publishes each
    sample to the process-wide registry (``onex_server_requests_total`` /
    ``onex_server_request_ms``), making the ring a bounded view over the
    same stream ``/metrics`` exposes cumulatively.
    """

    def __init__(self, ring_size: int = 256) -> None:
        self._mutex = threading.Lock()
        self._ring_size = ring_size
        self._rings: dict[str, deque] = {}
        self.handled = 0

    def record(self, op: str, elapsed_ms: float, code: int = 200) -> None:
        _REQUESTS_TOTAL.inc(op=op, code=str(code))
        _REQUEST_MS.observe(float(elapsed_ms), op=op)
        with self._mutex:
            self.handled += 1
            ring = self._rings.get(op)
            if ring is None:
                ring = self._rings[op] = deque(maxlen=self._ring_size)
            ring.append(float(elapsed_ms))

    def latency_snapshot(self) -> dict:
        with self._mutex:
            out = {}
            for op in sorted(self._rings):
                ordered = sorted(self._rings[op])
                out[op] = {
                    "count": len(ordered),
                    "p50_ms": _quantile(ordered, 0.50),
                    "p99_ms": _quantile(ordered, 0.99),
                }
            return out


def _make_handler(
    service: OnexService,
    gate: AdmissionGate,
    metrics: _ServerMetrics,
    uptime_s: Callable[[], float] | None = None,
    ready_fn: Callable[[], bool] | None = None,
    read_timeout_s: float | None = 30.0,
) -> type[BaseHTTPRequestHandler]:
    locks = DatasetLockManager(known=lambda: service.engine.dataset_names)
    if uptime_s is None:
        started = time.monotonic()
        uptime_s = lambda: time.monotonic() - started  # noqa: E731
    if ready_fn is None:
        ready_fn = lambda: True  # noqa: E731
    pool_status = getattr(service, "pool_status", None)

    class Handler(BaseHTTPRequestHandler):
        """One request thread: admission, locking, envelopes."""

        # Per-connection socket timeout (StreamRequestHandler.setup calls
        # settimeout with this): a client that stalls mid-body cannot
        # pin a handler thread forever — the read raises and maps to a
        # structured 408 below.  Idle keep-alive connections time out in
        # the stdlib's request-line read and are simply closed.
        timeout = read_timeout_s

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # request logging is the structured logger's job

        def _pool_summary(self) -> dict | None:
            if pool_status is None:
                return None
            status = pool_status()
            return {
                "size": status["size"],
                "live": status["live"],
                "failovers": status["failovers"],
                "workers": [
                    {
                        "slot": w["slot"],
                        "pid": w["pid"],
                        "state": w["state"],
                        "restarts": w["restarts"],
                        "crashes": w["crashes"],
                    }
                    for w in status["workers"]
                ],
            }

        def _send(self, status: int, payload: dict, headers: dict | None = None) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            # Probes bypass the admission gate on purpose: an overloaded
            # or draining server must still answer health checks and
            # scrapers.
            if self.path == "/health":
                with locks.registry_read():
                    datasets = service.engine.dataset_names
                    fingerprints = service.engine.fingerprints()
                    durability = service.durability_status()
                payload = {
                    "status": "ok",
                    "version": repro.__version__,
                    "uptime_s": round(uptime_s(), 3),
                    "datasets": datasets,
                    "fingerprints": fingerprints,
                    "in_flight": gate.in_flight,
                    "shed": gate.shed,
                    "handled": metrics.handled,
                    "latency_ms": metrics.latency_snapshot(),
                }
                if durability is not None:
                    # Operators verify recovery here: per-dataset WAL
                    # and checkpoint positions plus the last recovery
                    # report (datasets, replayed records, torn bytes).
                    payload["durability"] = durability
                payload["ready"] = ready_fn() and gate.is_open
                pool = self._pool_summary()
                if pool is not None:
                    payload["pool"] = pool
                self._send(200, payload)
            elif self.path == "/metrics":
                # Point-in-time gauges are set at scrape; counters and
                # histograms accumulate at their sources.
                _IN_FLIGHT.set(gate.in_flight)
                _UPTIME.set(uptime_s())
                _INFO.set(1.0, version=repro.__version__)
                self._send_text(
                    200,
                    REGISTRY.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == "/ready":
                pool = self._pool_summary()
                pool_ok = pool is None or pool["live"] > 0
                ready = ready_fn() and gate.is_open and pool_ok
                payload: dict = {"ready": ready, "in_flight": gate.in_flight}
                if pool is not None:
                    payload["pool"] = pool
                self._send(200 if ready else 503, payload)
            else:
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            if self.path != "/api":
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})
                return
            # A malformed Content-Length used to raise out of the handler,
            # killing the connection with no response; so did any decoding
            # failure Request.from_json does not translate itself.  Every
            # malformed request now maps to a 400 envelope and the
            # connection (and server) keeps serving.
            raw_length = self.headers.get("Content-Length", 0)
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError("negative length")
            except (TypeError, ValueError):
                self._send(
                    400,
                    Response.failure(
                        ProtocolError(f"invalid Content-Length: {raw_length!r}")
                    ).to_dict(),
                )
                return
            # The body read honours the per-connection socket timeout: a
            # slow client that never delivers its advertised bytes gets a
            # structured 408 instead of pinning this handler thread (and
            # an admission-gate slot's worth of goodwill) indefinitely.
            try:
                body = self.rfile.read(length)
            except (TimeoutError, OSError) as exc:
                self.close_connection = True
                self._send(
                    408,
                    Response.failure(
                        ProtocolError(
                            "timed out reading the request body "
                            f"({type(exc).__name__})"
                        )
                    ).to_dict(),
                )
                return
            if len(body) != length:
                self.close_connection = True
                self._send(
                    400,
                    Response.failure(
                        ProtocolError(
                            f"request body truncated: got {len(body)} of "
                            f"{length} bytes"
                        )
                    ).to_dict(),
                )
                return
            try:
                request = Request.from_json(body)
            except ProtocolError as exc:
                self._send(400, Response.failure(exc).to_dict())
                return
            except Exception as exc:  # undecodable or pathological bodies
                self._send(
                    400,
                    Response.failure(
                        ProtocolError(
                            f"malformed request body: {type(exc).__name__}: {exc}"
                        )
                    ).to_dict(),
                )
                return
            if request.request_id is None:
                # Mint the correlation ID before anything can fail, so
                # every outcome below — shed, fault, success — carries
                # one.  (The service also mints defensively when driven
                # without this front end.)
                request = replace(request, request_id=new_request_id())
            rid_header = {"X-Request-Id": request.request_id}
            if not ready_fn():
                # Recovery (or another startup phase) is still running:
                # shed cleanly rather than serve from a partially
                # replayed engine.  /ready mirrors this state for load
                # balancers.
                retry_after = 1
                not_ready = NotReadyError(
                    "server is not ready (recovery in progress); "
                    f"retry after {retry_after}s",
                    retry_after=retry_after,
                )
                _REQUESTS_TOTAL.inc(op=request.op, code="503")
                self._send(
                    503,
                    Response.failure(not_ready)
                    .with_request_id(request.request_id)
                    .to_dict(),
                    headers={"Retry-After": str(retry_after), **rid_header},
                )
                return
            if not gate.try_acquire():
                retry_after = 1
                shed = OverloadedError(
                    f"server overloaded ({gate.max_in_flight} in flight, "
                    f"{gate.max_queue} queued); retry after {retry_after}s",
                    retry_after=retry_after,
                )
                _SHED_TOTAL.inc()
                _REQUESTS_TOTAL.inc(op=request.op, code="503")
                log_event(
                    _LOG,
                    "warning",
                    "server.shed",
                    op=request.op,
                    request_id=request.request_id,
                    in_flight=gate.max_in_flight,
                    queue=gate.max_queue,
                )
                self._send(
                    503,
                    Response.failure(shed).with_request_id(request.request_id).to_dict(),
                    headers={"Retry-After": str(retry_after), **rid_header},
                )
                return
            extra_headers = dict(rid_header)
            try:
                faults.fire("server.handle", op=request.op)
                started = time.perf_counter()
                with locks.guard(request):
                    response = service.handle(request)
                metrics.record(
                    request.op, (time.perf_counter() - started) * 1000.0
                )
                status, payload = 200, response.to_dict()
            except (OverloadedError, WorkerCrashedError) as exc:
                # Raised by the supervisor's pool dispatch: no live
                # workers / all busy, or a worker died holding a
                # non-read-only request.  Both are retryable — the
                # client's stable request_id makes a mutating retry
                # idempotent — so surface 503 + Retry-After rather than
                # hanging or returning a 200 error envelope.
                retry_after = getattr(exc, "retry_after", None) or 1
                _REQUESTS_TOTAL.inc(op=request.op, code="503")
                log_event(
                    _LOG,
                    "warning",
                    "server.pool_unavailable",
                    op=request.op,
                    request_id=request.request_id,
                    error=type(exc).__name__,
                )
                extra_headers["Retry-After"] = str(max(1, round(retry_after)))
                status, payload = 503, Response.failure(exc).with_request_id(
                    request.request_id
                ).to_dict()
            except faults.FaultInjectedError as exc:
                _REQUESTS_TOTAL.inc(op=request.op, code="500")
                status, payload = 500, Response.internal_error(exc).with_request_id(
                    request.request_id
                ).to_dict()
            finally:
                gate.release()
            self._send(status, payload, headers=extra_headers)

    return Handler


class OnexHttpServer:
    """Threaded HTTP wrapper around one :class:`OnexService`.

    *max_in_flight*/*max_queue* configure the admission gate (see
    :class:`AdmissionGate`); *drain_timeout* bounds how long ``stop()``
    waits — first for in-flight requests to finish, then for the serve
    thread to exit.
    """

    def __init__(
        self,
        service: OnexService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 8,
        max_queue: int = 16,
        drain_timeout: float = 5.0,
        read_timeout_s: float = 30.0,
        ready: bool = True,
    ) -> None:
        self.service = service or OnexService()
        self.gate = AdmissionGate(max_in_flight, max_queue)
        self.metrics = _ServerMetrics()
        self._drain_timeout = float(drain_timeout)
        self._ready = threading.Event()
        if ready:
            self._ready.set()
        self.started_monotonic = time.monotonic()
        try:
            self._httpd = ThreadingHTTPServer(
                (host, port),
                _make_handler(
                    self.service,
                    self.gate,
                    self.metrics,
                    uptime_s=lambda: time.monotonic() - self.started_monotonic,
                    ready_fn=self._ready.is_set,
                    read_timeout_s=float(read_timeout_s),
                ),
            )
        except OSError as exc:
            raise StartupError(
                f"cannot bind {host}:{port}: {exc}"
                + (
                    " (is another server already listening there?)"
                    if getattr(exc, "errno", None) in (13, 48, 98)
                    else ""
                )
            ) from exc
        self._thread: threading.Thread | None = None
        # A supervisor-backed service scales the admission cap with live
        # worker capacity; the plain single-process service has no hook.
        attach_gate = getattr(self.service, "attach_gate", None)
        if callable(attach_gate):
            attach_gate(self.gate)

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 picks a free one)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def is_ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool = True) -> None:
        """Flip the readiness gate (the CLI keeps it down during recovery).

        While down, ``/api`` sheds with a structured 503 +
        ``Retry-After`` (``NotReadyError`` envelope) and ``/ready``
        reports false — a client can never observe a partially replayed
        engine.  ``/health`` and ``/metrics`` stay up throughout.
        """
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    def start(self) -> "OnexHttpServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        log_event(_LOG, "info", "server.started", url=self.url)
        return self

    def stop(self) -> dict | None:
        """Drain and shut down; returns ``{"drained": n, "aborted": m}``.

        The gate closes first, so new arrivals get clean 503s while
        in-flight requests run to completion (up to *drain_timeout*).
        Requests still running after the budget are abandoned on their
        daemon threads and counted as aborted.  A serve thread that then
        fails to exit raises :class:`ShutdownTimeoutError` — previously
        this leak was silent.
        """
        if self._thread is None:
            return None
        self.gate.close()
        in_flight = self.gate.in_flight
        leftover = self.gate.wait_idle(self._drain_timeout) if in_flight else 0
        self._httpd.shutdown()
        self._thread.join(timeout=self._drain_timeout)
        leaked = self._thread.is_alive()
        self._httpd.server_close()
        self._thread = None
        if leaked:
            raise ShutdownTimeoutError(
                f"HTTP serve thread failed to exit within {self._drain_timeout:g}s "
                f"of shutdown ({leftover} requests still in flight)"
            )
        log_event(
            _LOG,
            "info",
            "server.stopped",
            drained=in_flight - leftover,
            aborted=leftover,
        )
        return {"drained": in_flight - leftover, "aborted": leftover}

    def __enter__(self) -> "OnexHttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
