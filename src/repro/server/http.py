"""Stdlib-only HTTP front end for the ONEX service.

Endpoints:

- ``POST /api`` — a protocol request as the JSON body; returns the
  response envelope.  Engine errors map to 200-with-``ok: false`` (they
  are application results); malformed envelopes map to 400.
- ``GET /health`` — liveness plus loaded dataset names.

The server runs on a daemon thread (``start()``/``stop()``), which is how
the examples and integration tests drive a real client/server round trip
in-process.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ProtocolError
from repro.server.protocol import Request, Response
from repro.server.service import OnexService

__all__ = ["OnexHttpServer"]


def _make_handler(service: OnexService):
    class Handler(BaseHTTPRequestHandler):
        # Serialise engine access: the service is not thread-safe and the
        # demo semantics (one analyst session) do not need concurrency.
        lock = threading.Lock()

        def log_message(self, fmt, *args):  # silence request logging
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - stdlib naming
            if self.path == "/health":
                with self.lock:
                    datasets = service.engine.dataset_names
                self._send(200, {"status": "ok", "datasets": datasets})
            else:
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})

        def do_POST(self):  # noqa: N802 - stdlib naming
            if self.path != "/api":
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
            try:
                request = Request.from_json(body)
            except ProtocolError as exc:
                self._send(400, Response.failure(exc).to_dict())
                return
            with self.lock:
                response = service.handle(request)
            self._send(200, response.to_dict())

    return Handler


class OnexHttpServer:
    """Threaded HTTP wrapper around one :class:`OnexService`."""

    def __init__(self, service: OnexService | None = None, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service or OnexService()
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self.service))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 picks a free one)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "OnexHttpServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "OnexHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
