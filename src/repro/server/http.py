"""Stdlib-only HTTP front end for the ONEX service.

Endpoints:

- ``POST /api`` — a protocol request as the JSON body; returns the
  response envelope.  Engine errors map to 200-with-``ok: false`` (they
  are application results); malformed envelopes map to 400.
- ``GET /health`` — liveness plus loaded dataset names.

Concurrency model: one reader/writer lock per loaded dataset, plus a
registry-level lock guarding the dataset table itself.  Read-only
operations (``protocol.READ_ONLY_OPERATIONS``) take the shared side, so
any number of concurrent queries — against one dataset or several —
proceed in parallel; mutating operations (loads, series appends, monitor
registration, saves) take the exclusive side of their dataset only, and
``load_dataset``/``unload_dataset`` exclusively lock the registry because
they change the table every other request routes through.

Throughput-sensitive clients should prefer ``query_batch`` over a stream
of single-query requests: one request pays the HTTP round trip, JSON
envelope, and lock acquisition once for the whole batch, and the engine's
multi-query planner stacks the batch's kernel work (see
``QueryProcessor.batch_matches``) — it holds the same shared read lock,
so it never blocks other readers.

The server runs on a daemon thread (``start()``/``stop()``), which is how
the examples and integration tests drive a real client/server round trip
in-process.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ProtocolError
from repro.server.protocol import READ_ONLY_OPERATIONS, Request, Response
from repro.server.service import OnexService

__all__ = ["DatasetLockManager", "OnexHttpServer", "ReadWriteLock"]


class ReadWriteLock:
    """A fair-enough reader/writer lock built on one condition variable.

    Any number of readers share the lock; a writer is exclusive.  Waiting
    writers block new readers (writer preference), so a stream of
    overlapping queries cannot starve an append.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        """Context-managed shared acquisition."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Context-managed exclusive acquisition."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class DatasetLockManager:
    """Per-dataset reader/writer locks behind one registry lock.

    ``guard(request)`` yields with the right locks held for one protocol
    request: registry-exclusive for load/unload, else registry-shared
    plus the target dataset's lock in the mode the operation needs.
    *known* (a callable returning the loaded dataset names) bounds the
    lock table: a request naming an unknown dataset gets a throwaway lock
    — the engine raises its own error under it — so garbage names from
    unauthenticated input cannot grow the table; unload drops entries.
    """

    def __init__(self, known=None) -> None:
        self._mutex = threading.Lock()
        self._registry = ReadWriteLock()
        self._locks: dict[str, ReadWriteLock] = {}
        self._known = known

    def _lock_for(self, dataset: str) -> ReadWriteLock:
        with self._mutex:
            lock = self._locks.get(dataset)
            if lock is None:
                lock = ReadWriteLock()
                # Callers hold the registry read-side, so the loaded set
                # cannot change under this membership check.
                if self._known is None or dataset in self._known():
                    self._locks[dataset] = lock
            return lock

    def drop(self, dataset: str) -> None:
        with self._mutex:
            self._locks.pop(dataset, None)

    @contextmanager
    def registry_read(self):
        """Shared hold on the dataset table (e.g. the health endpoint)."""
        with self._registry.read():
            yield

    @contextmanager
    def guard(self, request: Request):
        """Hold the locks one request needs for its whole execution."""
        if request.op in ("load_dataset", "unload_dataset"):
            with self._registry.write():
                yield
                # Drop while still holding the registry exclusively: doing
                # it after release would race a reload handing out a second
                # lock object for the same name.
                if request.op == "unload_dataset":
                    self.drop(str(request.params.get("dataset")))
            return
        dataset = request.params.get("dataset")
        with self._registry.read():
            if dataset is None:
                yield
                return
            lock = self._lock_for(str(dataset))
            if request.op in READ_ONLY_OPERATIONS:
                with lock.read():
                    yield
            else:
                with lock.write():
                    yield


def _make_handler(service: OnexService):
    locks = DatasetLockManager(known=lambda: service.engine.dataset_names)

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # silence request logging
            pass

        def _send(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - stdlib naming
            if self.path == "/health":
                with locks.registry_read():
                    datasets = service.engine.dataset_names
                self._send(200, {"status": "ok", "datasets": datasets})
            else:
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})

        def do_POST(self):  # noqa: N802 - stdlib naming
            if self.path != "/api":
                self._send(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})
                return
            # A malformed Content-Length used to raise out of the handler,
            # killing the connection with no response; so did any decoding
            # failure Request.from_json does not translate itself.  Every
            # malformed request now maps to a 400 envelope and the
            # connection (and server) keeps serving.
            raw_length = self.headers.get("Content-Length", 0)
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError("negative length")
            except (TypeError, ValueError):
                self._send(
                    400,
                    Response.failure(
                        ProtocolError(f"invalid Content-Length: {raw_length!r}")
                    ).to_dict(),
                )
                return
            body = self.rfile.read(length)
            try:
                request = Request.from_json(body)
            except ProtocolError as exc:
                self._send(400, Response.failure(exc).to_dict())
                return
            except Exception as exc:  # undecodable or pathological bodies
                self._send(
                    400,
                    Response.failure(
                        ProtocolError(
                            f"malformed request body: {type(exc).__name__}: {exc}"
                        )
                    ).to_dict(),
                )
                return
            with locks.guard(request):
                response = service.handle(request)
            self._send(200, response.to_dict())

    return Handler


class OnexHttpServer:
    """Threaded HTTP wrapper around one :class:`OnexService`."""

    def __init__(self, service: OnexService | None = None, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service or OnexService()
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self.service))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 picks a free one)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "OnexHttpServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "OnexHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
