"""Supervised pre-fork worker pool over mmap-shared base snapshots.

:class:`WorkerPool` forks N worker processes, each running a full
:class:`~repro.server.service.OnexService` whose datasets are attached
read-only from published mmap snapshots
(:mod:`repro.core.mmap_layout`).  The supervisor process keeps the
listening socket and dispatches one protocol request at a time per
worker over a private socketpair (length-prefixed JSON frames); the
kernel's page cache makes every worker's member/centroid/summary stacks
views over the same physical pages, so adding a worker adds parallelism
without adding copies of the base.

Fault containment and failover:

- **Crash detection** — the dispatching thread sees EOF on the worker's
  socket the moment the process dies (including ``kill -9``
  mid-request); a monitor thread additionally reaps exits and watches
  per-worker heartbeat pipes.
- **Hang detection** — each worker's heartbeat thread stops beating
  once a single request has been executing longer than
  ``stall_limit_s``; a stale heartbeat makes the monitor ``SIGKILL``
  the worker, which surfaces as an EOF to the dispatcher and flows
  through the same failover path as a crash.
- **Failover** — a read-only operation
  (:data:`~repro.server.protocol.READ_ONLY_OPERATIONS`) is
  re-dispatched transparently to a surviving worker; anything else
  raises :class:`~repro.exceptions.WorkerCrashedError` (HTTP 503 +
  ``Retry-After``), which the client's stable ``request_id`` makes safe
  to retry — the server's idempotency window absorbs the replay.
- **Restart policy** — per-slot exponential backoff
  (``backoff_base_s * 2^(failures-1)``, capped), with a consecutive-
  failure counter that resets after ``backoff_reset_s`` of healthy
  uptime.  A slot crashing ``flap_threshold`` times within
  ``flap_window_s`` trips its circuit breaker: the slot goes
  ``broken`` and is only re-probed after ``flap_cooldown_s``.
- **Degraded capacity** — every live-count change invokes
  ``on_capacity_change(live, size)`` (the HTTP server resizes its
  admission gate through it); with zero live workers ``dispatch``
  raises :class:`~repro.exceptions.OverloadedError` immediately with a
  ``Retry-After`` hint derived from the nearest scheduled restart, so
  clients shed cleanly instead of hanging.

Chaos hooks: the worker request loop fires the ``worker.kill`` and
``worker.hang`` failpoints (:mod:`repro.testing.faults`) before
executing each dispatched request; both are inherited across the fork,
so a test arming them in the supervisor process takes down real worker
processes deterministically.
"""

from __future__ import annotations

import json
import os
import select
import signal
import socket
import struct
import threading
import time
from collections import deque
from typing import Any, Callable

from multiprocessing import get_context

from repro.exceptions import OverloadedError, WorkerCrashedError
from repro.obs.logs import get_logger, log_event
from repro.obs.metrics import REGISTRY
from repro.server.protocol import READ_ONLY_OPERATIONS, Request, Response
from repro.testing import faults

__all__ = ["WorkerPool"]

_LOG = get_logger("pool")

_POOL_SIZE = REGISTRY.gauge(
    "onex_pool_workers", "Configured worker-pool size"
)
_POOL_LIVE = REGISTRY.gauge(
    "onex_pool_live_workers", "Workers currently serving dispatches"
)
_WORKER_UP = REGISTRY.gauge(
    "onex_pool_worker_up", "Per-slot liveness (1 = serving)"
)
_RESTARTS_TOTAL = REGISTRY.counter(
    "onex_pool_worker_restarts_total", "Worker processes (re)started, per slot"
)
_CRASHES_TOTAL = REGISTRY.counter(
    "onex_pool_worker_crashes_total",
    "Worker deaths by slot and kind (exit | hang | startup)",
)
_DISPATCH_TOTAL = REGISTRY.counter(
    "onex_pool_dispatch_total",
    "Dispatch outcomes (ok | failover | crashed | no_capacity)",
)

_FRAME_HEADER = struct.Struct(">I")
#: Upper bound on one frame's payload — a defence against a corrupted
#: length prefix mapping to a multi-GB allocation.
_MAX_FRAME = 256 * 1024 * 1024


def _send_frame(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload).encode()
    sock.sendall(_FRAME_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> dict | None:
    """One length-prefixed JSON frame, or None on a clean EOF."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    loaded = json.loads(body)
    if not isinstance(loaded, dict):
        raise ConnectionError("frame payload must be a JSON object")
    return loaded


def _response_from_dict(payload: dict) -> Response:
    if payload.get("ok"):
        return Response(
            ok=True,
            result=payload.get("result"),
            request_id=payload.get("request_id"),
        )
    error = payload.get("error") or {}
    return Response(
        ok=False,
        error_type=error.get("type"),
        error_message=error.get("message"),
        error_details=error.get("details"),
        request_id=payload.get("request_id"),
    )


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------


class _WorkerClock:
    """Shared request-progress state between loop and heartbeat thread."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.request_started: float | None = None

    def begin(self) -> None:
        with self.lock:
            self.request_started = time.monotonic()

    def end(self) -> None:
        with self.lock:
            self.request_started = None

    def stalled_for(self) -> float:
        with self.lock:
            if self.request_started is None:
                return 0.0
            return time.monotonic() - self.request_started


def _worker_register(service: Any, name: str, path: str, fingerprint: str | None) -> None:
    from repro.core.mmap_layout import load_base_snapshot

    base, meta = load_base_snapshot(path, mmap_mode="r")
    engine = service.engine
    if name in engine.dataset_names:
        engine.unload_dataset(name)
    engine.restore_dataset(
        base.raw_dataset,
        base,
        fingerprint=fingerprint or meta.get("structure_fingerprint"),
    )


def _worker_main(
    index: int,
    conn: socket.socket,
    heartbeat_fd: int,
    service_config: dict,
    snapshot_table: list[tuple[str, str, str | None]],
) -> None:
    """Entry point of one forked worker (never returns normally)."""
    from repro.core.config import QueryConfig
    from repro.server.service import OnexService

    clock = _WorkerClock()
    interval = float(service_config.get("heartbeat_interval_s", 0.2))
    stall_limit = service_config.get("stall_limit_s")

    def beat() -> None:
        while True:
            if stall_limit is None or clock.stalled_for() < float(stall_limit):
                try:
                    os.write(heartbeat_fd, b"\x01")
                except BlockingIOError:
                    pass  # supervisor will drain; the pipe holds plenty
                except OSError:
                    os._exit(0)  # supervisor is gone
            time.sleep(interval)

    try:
        service = OnexService(
            QueryConfig(**(service_config.get("query_config") or {})),
            default_timeout_ms=service_config.get("default_timeout_ms"),
        )
        for name, path, fingerprint in snapshot_table:
            _worker_register(service, name, path, fingerprint)
        threading.Thread(target=beat, daemon=True).start()
        _send_frame(conn, {"ctl": "ready", "pid": os.getpid()})
        while True:
            frame = _recv_frame(conn)
            if frame is None:  # supervisor closed the pair: shut down
                os._exit(0)
            ctl = frame.get("ctl")
            if ctl == "remap":
                try:
                    _worker_register(
                        service,
                        str(frame["dataset"]),
                        str(frame["path"]),
                        frame.get("fingerprint"),
                    )
                    _send_frame(conn, {"ok": True})
                except Exception as exc:
                    _send_frame(conn, {"ok": False, "error": str(exc)})
                continue
            if ctl == "unload":
                name = str(frame["dataset"])
                if name in service.engine.dataset_names:
                    service.engine.unload_dataset(name)
                _send_frame(conn, {"ok": True})
                continue
            if ctl == "ping":
                _send_frame(conn, {"ok": True, "pid": os.getpid()})
                continue
            if ctl == "shutdown":
                _send_frame(conn, {"ok": True})
                os._exit(0)
            request = frame.get("req")
            if not isinstance(request, dict):
                _send_frame(conn, {"ok": False, "error": "bad frame"})
                continue
            op = request.get("op")
            clock.begin()
            try:
                faults.fire("worker.kill", op=op)
                faults.fire("worker.hang", op=op)
                response = service.handle(request)
            finally:
                clock.end()
            _send_frame(conn, response.to_dict())
    except (OSError, ConnectionError, KeyboardInterrupt):
        os._exit(0)
    except BaseException:  # never unwind back into forked interpreter state
        os._exit(1)


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------


class _Slot:
    """One worker seat: process handle, channel, and restart bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Any = None
        self.conn: socket.socket | None = None
        self.heartbeat_fd: int | None = None
        #: starting | live | backoff | broken | stopped
        self.state = "stopped"
        self.busy = False
        self.started_at = 0.0
        self.last_beat = 0.0
        self.restart_at = 0.0
        self.restarts = 0
        self.crashes = 0
        self.consecutive_failures = 0
        self.crash_times: deque = deque()
        self.last_crash_op: str | None = None
        self.last_crash_kind: str | None = None
        #: Set by the monitor when it SIGKILLs a busy hung worker: the
        #: dispatcher's EOF path reports the death, but the *cause* was
        #: the hang, and status/metrics must say so.
        self.pending_kind: str | None = None

    def status(self) -> dict:
        return {
            "slot": self.index,
            "pid": self.proc.pid if self.proc is not None else None,
            "state": self.state,
            "busy": self.busy,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "consecutive_failures": self.consecutive_failures,
            "last_crash_op": self.last_crash_op,
            "last_crash_kind": self.last_crash_kind,
        }


class WorkerPool:
    """N supervised pre-fork workers serving read-only dispatches.

    See the module docstring for the fault model.  *service_config*
    carries ``query_config`` kwargs and ``default_timeout_ms`` into each
    worker's :class:`~repro.server.service.OnexService`; snapshots are
    announced with :meth:`remap` (re-announced automatically to every
    restarted worker).  *on_capacity_change* is invoked as
    ``callback(live, size)`` on every live-count transition.
    """

    def __init__(
        self,
        size: int,
        *,
        service_config: dict | None = None,
        heartbeat_interval_s: float = 0.2,
        heartbeat_timeout_s: float | None = None,
        stall_limit_s: float | None = 30.0,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 5.0,
        backoff_reset_s: float = 5.0,
        flap_threshold: int = 5,
        flap_window_s: float = 30.0,
        flap_cooldown_s: float = 30.0,
        start_timeout_s: float = 60.0,
        dispatch_wait_s: float = 30.0,
        on_capacity_change: Callable[[int, int], None] | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self._service_config = dict(service_config or {})
        self._service_config.setdefault(
            "heartbeat_interval_s", float(heartbeat_interval_s)
        )
        if stall_limit_s is not None:
            self._service_config.setdefault("stall_limit_s", float(stall_limit_s))
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = (
            float(heartbeat_timeout_s)
            if heartbeat_timeout_s is not None
            else max(1.0, 6.0 * self.heartbeat_interval_s)
        )
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_reset_s = float(backoff_reset_s)
        self.flap_threshold = int(flap_threshold)
        self.flap_window_s = float(flap_window_s)
        self.flap_cooldown_s = float(flap_cooldown_s)
        self.start_timeout_s = float(start_timeout_s)
        self.dispatch_wait_s = float(dispatch_wait_s)
        self.on_capacity_change = on_capacity_change
        self._cond = threading.Condition()
        self._slots = [_Slot(i) for i in range(self.size)]
        self._snapshot_table: dict[str, tuple[str, str | None]] = {}
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._ctx = get_context("fork")
        self.dispatched = 0
        self.failovers = 0
        _POOL_SIZE.set(float(self.size))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._cond:
            if self._monitor is not None:
                return self
            for slot in self._slots:
                self._spawn(slot)
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True
            )
            self._monitor.start()
        return self

    def wait_live(self, timeout: float | None = None) -> int:
        """Block until every slot is live (or *timeout*); returns live count."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while self._live_count() < self.size:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining if remaining is not None else 0.5)
            return self._live_count()

    def stop(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for slot in self._slots:
            self._close_slot_fds(slot)
        for slot in self._slots:
            proc = slot.proc
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            slot.proc = None
            slot.state = "stopped"
            _WORKER_UP.set(0.0, slot=str(slot.index))
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None
        _POOL_LIVE.set(0.0)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _live_count(self) -> int:
        return sum(1 for s in self._slots if s.state == "live")

    @property
    def live_workers(self) -> int:
        with self._cond:
            return self._live_count()

    def worker_pids(self) -> list[int | None]:
        with self._cond:
            return [
                s.proc.pid if s.proc is not None and s.state == "live" else None
                for s in self._slots
            ]

    def status(self) -> dict:
        with self._cond:
            return {
                "size": self.size,
                "live": self._live_count(),
                "dispatched": self.dispatched,
                "failovers": self.failovers,
                "workers": [s.status() for s in self._slots],
            }

    # ------------------------------------------------------------------
    # Snapshot announcements
    # ------------------------------------------------------------------

    def remap(self, dataset: str, path: str, fingerprint: str | None = None) -> None:
        """Announce (or re-announce) *dataset*'s snapshot to every worker.

        The table entry is recorded first, so workers restarted mid-
        broadcast pick it up at spawn; the broadcast then walks every
        live worker, taking each slot exclusively (a slot mid-query is
        remapped right after its in-flight dispatch completes).
        """
        with self._cond:
            self._snapshot_table[dataset] = (str(path), fingerprint)
        self._broadcast(
            {
                "ctl": "remap",
                "dataset": dataset,
                "path": str(path),
                "fingerprint": fingerprint,
            }
        )

    def unload(self, dataset: str) -> None:
        with self._cond:
            self._snapshot_table.pop(dataset, None)
        self._broadcast({"ctl": "unload", "dataset": dataset})

    def _broadcast(self, frame: dict) -> None:
        for slot in self._slots:
            with self._cond:
                deadline = time.monotonic() + self.dispatch_wait_s
                while (
                    slot.state == "live"
                    and slot.busy
                    and time.monotonic() < deadline
                ):
                    self._cond.wait(0.1)
                if slot.state != "live" or slot.busy:
                    continue
                slot.busy = True
                conn, proc = slot.conn, slot.proc
            ok = False
            try:
                _send_frame(conn, frame)
                reply = _recv_frame(conn)
                ok = reply is not None
                if reply is not None and not reply.get("ok", False):
                    log_event(
                        _LOG,
                        "error",
                        "pool.ctl_failed",
                        slot=slot.index,
                        ctl=frame.get("ctl"),
                        error=reply.get("error"),
                    )
            except (OSError, ConnectionError, ValueError):
                ok = False
            finally:
                with self._cond:
                    slot.busy = False
                    if not ok:
                        self._note_death(slot, proc, kind="exit", op=frame.get("ctl"))
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Execute *request* on a live worker; fails over on crashes.

        Read-only operations re-dispatch transparently (bounded by the
        pool size plus one); any other operation interrupted by a worker
        death raises :class:`WorkerCrashedError` — retryable, absorbed
        by the client's request-id idempotency window.
        """
        envelope: dict = {"op": request.op, "params": request.params}
        if request.request_id is not None:
            envelope["request_id"] = request.request_id
        attempts = 0
        max_attempts = self.size + 1
        while True:
            slot = self._acquire_slot()
            conn, proc = slot.conn, slot.proc
            ok = False
            try:
                _send_frame(conn, {"req": envelope})
                reply = _recv_frame(conn)
                if reply is None:
                    raise ConnectionError("worker closed mid-request")
                ok = True
            except (OSError, ConnectionError, ValueError):
                attempts += 1
                with self._cond:
                    slot.busy = False
                    self._note_death(slot, proc, kind="exit", op=request.op)
                    self._cond.notify_all()
                if request.op in READ_ONLY_OPERATIONS and attempts < max_attempts:
                    self.failovers += 1
                    _DISPATCH_TOTAL.inc(outcome="failover")
                    log_event(
                        _LOG,
                        "warning",
                        "pool.failover",
                        op=request.op,
                        slot=slot.index,
                        attempt=attempts,
                    )
                    continue
                _DISPATCH_TOTAL.inc(outcome="crashed")
                raise WorkerCrashedError(
                    f"worker {slot.index} died executing {request.op!r}; "
                    "the operation may or may not have applied — retry with "
                    "the same request_id",
                    retry_after=1.0,
                ) from None
            finally:
                if ok:
                    with self._cond:
                        slot.busy = False
                        self._cond.notify_all()
            self.dispatched += 1
            _DISPATCH_TOTAL.inc(outcome="ok")
            return _response_from_dict(reply)

    def _acquire_slot(self) -> _Slot:
        deadline = time.monotonic() + self.dispatch_wait_s
        with self._cond:
            while True:
                if self._closed:
                    raise OverloadedError("worker pool is shut down")
                live = [s for s in self._slots if s.state == "live"]
                if not live:
                    _DISPATCH_TOTAL.inc(outcome="no_capacity")
                    raise OverloadedError(
                        "worker pool has no live workers",
                        retry_after=self._retry_after_hint(),
                    )
                for slot in live:
                    if not slot.busy:
                        slot.busy = True
                        return slot
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    _DISPATCH_TOTAL.inc(outcome="no_capacity")
                    raise OverloadedError(
                        f"all {len(live)} live workers busy for "
                        f"{self.dispatch_wait_s:g}s",
                        retry_after=1.0,
                    )
                self._cond.wait(remaining)

    def _retry_after_hint(self) -> float:
        now = time.monotonic()
        pending = [
            s.restart_at - now
            for s in self._slots
            if s.state in ("backoff", "broken")
        ]
        if not pending:
            return 1.0
        return max(0.5, min(min(pending) + self.backoff_base_s, self.backoff_cap_s))

    # ------------------------------------------------------------------
    # Spawning, monitoring, restart policy (monitor thread + helpers)
    # ------------------------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        """Fork a worker into *slot*.  Caller holds the condition."""
        parent_sock, child_sock = socket.socketpair()
        hb_read, hb_write = os.pipe()
        os.set_blocking(hb_read, False)
        os.set_blocking(hb_write, False)
        table = [
            (name, path, fingerprint)
            for name, (path, fingerprint) in sorted(self._snapshot_table.items())
        ]
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.index,
                child_sock,
                hb_write,
                dict(self._service_config),
                table,
            ),
            daemon=True,
            name=f"onex-worker-{slot.index}",
        )
        proc.start()
        child_sock.close()
        os.close(hb_write)
        slot.proc = proc
        slot.conn = parent_sock
        slot.heartbeat_fd = hb_read
        slot.state = "starting"
        slot.busy = False
        slot.started_at = time.monotonic()
        slot.last_beat = slot.started_at
        slot.restarts += 1
        _RESTARTS_TOTAL.inc(slot=str(slot.index))
        log_event(
            _LOG,
            "info",
            "pool.worker_spawned",
            slot=slot.index,
            pid=proc.pid,
            restarts=slot.restarts,
        )

    def _close_slot_fds(self, slot: _Slot) -> None:
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass  # already torn down by the peer
            slot.conn = None
        if slot.heartbeat_fd is not None:
            try:
                os.close(slot.heartbeat_fd)
            except OSError:
                pass  # already closed
            slot.heartbeat_fd = None

    def _note_death(
        self, slot: _Slot, proc: Any, kind: str, op: str | None = None
    ) -> None:
        """Transition a dead (or doomed) worker out of service.

        Caller holds the condition.  Idempotent per process instance:
        concurrent detection by a dispatcher (EOF) and the monitor
        (``is_alive``) collapses to one transition.
        """
        if self._closed or slot.proc is not proc or proc is None:
            return
        if slot.state not in ("starting", "live"):
            return
        if slot.pending_kind is not None:
            kind = slot.pending_kind
            slot.pending_kind = None
        was_live = slot.state == "live"
        now = time.monotonic()
        self._close_slot_fds(slot)
        try:
            if proc.is_alive():
                proc.kill()
        except (OSError, ValueError):
            pass  # already exited and reaped
        slot.crashes += 1
        slot.last_crash_op = op
        slot.last_crash_kind = kind
        _CRASHES_TOTAL.inc(slot=str(slot.index), kind=kind)
        _WORKER_UP.set(0.0, slot=str(slot.index))
        uptime = now - slot.started_at
        if uptime >= self.backoff_reset_s:
            slot.consecutive_failures = 1
        else:
            slot.consecutive_failures += 1
        slot.crash_times.append(now)
        while (
            slot.crash_times
            and now - slot.crash_times[0] > self.flap_window_s
        ):
            slot.crash_times.popleft()
        if len(slot.crash_times) >= self.flap_threshold:
            slot.state = "broken"
            slot.restart_at = now + self.flap_cooldown_s
            log_event(
                _LOG,
                "error",
                "pool.worker_broken",
                slot=slot.index,
                crashes_in_window=len(slot.crash_times),
                cooldown_s=self.flap_cooldown_s,
            )
        else:
            delay = min(
                self.backoff_cap_s,
                self.backoff_base_s
                * (2 ** max(0, slot.consecutive_failures - 1)),
            )
            slot.state = "backoff"
            slot.restart_at = now + delay
            log_event(
                _LOG,
                "warning",
                "pool.worker_died",
                slot=slot.index,
                kind=kind,
                op=op,
                uptime_s=round(uptime, 3),
                restart_in_s=round(delay, 3),
            )
        if was_live:
            self._capacity_changed()

    def _capacity_changed(self) -> None:
        """Publish the new live count.  Caller holds the condition."""
        live = self._live_count()
        _POOL_LIVE.set(float(live))
        callback = self.on_capacity_change
        self._cond.notify_all()
        if callback is not None:
            try:
                callback(live, self.size)
            except Exception as exc:  # observers must not kill the monitor
                log_event(
                    _LOG, "error", "pool.capacity_callback", error=str(exc)
                )

    def _monitor_loop(self) -> None:
        poll_s = max(0.02, self.heartbeat_interval_s / 4.0)
        while True:
            with self._cond:
                if self._closed:
                    return
                now = time.monotonic()
                for slot in self._slots:
                    self._monitor_slot(slot, now)
            time.sleep(poll_s)

    def _monitor_slot(self, slot: _Slot, now: float) -> None:
        """One monitoring pass over *slot*.  Caller holds the condition."""
        if slot.state in ("backoff", "broken"):
            if now >= slot.restart_at:
                self._spawn(slot)
            return
        if slot.state not in ("starting", "live"):
            return
        proc = slot.proc
        if proc is None:
            return
        if not proc.is_alive() and not slot.busy:
            # A busy slot's dispatcher owns the EOF (it must decide
            # failover vs WorkerCrashedError); reap idle deaths here.
            self._note_death(slot, proc, kind="exit")
            return
        if slot.heartbeat_fd is not None:
            try:
                while os.read(slot.heartbeat_fd, 4096):
                    slot.last_beat = now
            except BlockingIOError:
                pass  # pipe drained
            except OSError:
                pass  # fd died with the worker
        if slot.state == "starting":
            if slot.conn is not None and select.select([slot.conn], [], [], 0)[0]:
                try:
                    frame = _recv_frame(slot.conn)
                except (OSError, ConnectionError, ValueError):
                    frame = None
                if frame is not None and frame.get("ctl") == "ready":
                    slot.state = "live"
                    slot.last_beat = now
                    _WORKER_UP.set(1.0, slot=str(slot.index))
                    slot.consecutive_failures = 0
                    log_event(
                        _LOG,
                        "info",
                        "pool.worker_live",
                        slot=slot.index,
                        pid=proc.pid,
                    )
                    self._capacity_changed()
                else:
                    self._note_death(slot, proc, kind="startup")
            elif now - slot.started_at > self.start_timeout_s:
                self._note_death(slot, proc, kind="startup")
            return
        # live: a stale heartbeat means the worker is wedged (or a
        # request exceeded the stall limit and the worker stopped
        # beating on purpose) — kill it; the dispatcher holding it sees
        # EOF and fails over.
        if now - slot.last_beat > self.heartbeat_timeout_s:
            log_event(
                _LOG,
                "warning",
                "pool.worker_hung",
                slot=slot.index,
                pid=proc.pid,
                stale_s=round(now - slot.last_beat, 3),
            )
            try:
                proc.kill()
            except (OSError, ValueError):
                pass  # already dead
            if not slot.busy:
                self._note_death(slot, proc, kind="hang")
            else:
                # The dispatcher's EOF path records the death; hand the
                # cause over so status/metrics say "hang", not "exit".
                slot.pending_kind = "hang"
