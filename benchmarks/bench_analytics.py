"""E17: the analytics layer on the batched pruning cascade.

The seasonal verification, the verified sensitivity profile, and the
threshold recommendation were rebuilt on the PR1–PR3 batched machinery
(DESIGN.md §4) with the seed scalar implementations retained behind
``use_batching=False`` / ``base=None``.  This experiment measures both
sides of each operation on the interactive demo configuration and *gates
on exactness*: every timed pair must return identical results, so the
speedups are pure execution-strategy wins.

Ratio floors are asserted locally and reported-only on shared CI runners
(``ONEX_BENCH_SOFT=1``); the exactness gates always hold.
"""

import os
import time

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig
from repro.core.seasonal import find_seasonal_patterns
from repro.core.sensitivity import similarity_profile
from repro.core.threshold import recommend_thresholds
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection
from repro.data.timeseries import TimeSeries

SOFT = os.environ.get("ONEX_BENCH_SOFT") == "1"

GRID = (0.01, 0.02, 0.05, 0.1, 0.15, 0.2)


@pytest.fixture(scope="module")
def headline_growth():
    """The 50-states x 40-years headline collection (run_all's FULL config)."""
    return build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[:50],
        years=40,
        min_years=34,
        seed=5,
    )


@pytest.fixture(scope="module")
def headline_base(headline_growth) -> OnexBase:
    base = OnexBase(
        headline_growth,
        BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8),
    )
    base.build()
    return base


@pytest.fixture(scope="module")
def growth_panel(headline_growth) -> TimeSeries:
    """The 50-state x 40-year GrowthRate panel stitched into one long
    series — the single-series workload the Seasonal View mines."""
    return TimeSeries(
        "US-50/GrowthRate",
        np.concatenate([s.values for s in headline_growth]),
    )


def _timed(fn, repeats: int = 3):
    best, out = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_seasonal_batched_vs_scalar(benchmark, growth_panel):
    """Condensed-pairwise verification vs the seed per-pair scalar scan."""
    args = (growth_panel, 12, 0.1)

    patterns = benchmark.pedantic(
        find_seasonal_patterns, args=args, kwargs={"use_batching": True},
        rounds=3, iterations=1,
    )
    t_scalar, scalar = _timed(
        lambda: find_seasonal_patterns(*args, use_batching=False)
    )
    t_batched, _ = _timed(
        lambda: find_seasonal_patterns(*args, use_batching=True)
    )

    assert [(p.starts, p.max_pairwise_dtw) for p in patterns] == [
        (p.starts, p.max_pairwise_dtw) for p in scalar
    ], "batched seasonal verification changed the patterns"
    speedup = t_scalar / t_batched
    benchmark.extra_info["patterns"] = len(patterns)
    benchmark.extra_info["scalar_seconds"] = round(t_scalar, 4)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    if not SOFT:
        assert speedup >= 3.0, f"seasonal cascade only {speedup:.2f}x"


def test_verified_profile_batched_vs_scalar(benchmark, headline_base):
    """One stacked member-DTW call per bucket vs one scalar ``dtw_path``
    per ambiguous member."""
    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(3)]

    def run(use_batching: bool):
        return [
            similarity_profile(
                headline_base, q, GRID, verify=True, normalize=False,
                use_batching=use_batching,
            )
            for q in queries
        ]

    batched = benchmark.pedantic(run, args=(True,), rounds=3, iterations=1)
    t_scalar, scalar = _timed(lambda: run(False))
    t_batched, _ = _timed(lambda: run(True))

    for a, b in zip(batched, scalar):
        assert a.points == b.points and a.candidates == b.candidates, (
            "batched profile changed the counts"
        )
    speedup = t_scalar / t_batched
    benchmark.extra_info["candidates"] = batched[0].candidates
    benchmark.extra_info["scalar_seconds"] = round(t_scalar, 4)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    if not SOFT:
        assert speedup >= 3.0, f"verified profile only {speedup:.2f}x"


def test_recommend_base_sampler_vs_standalone(benchmark, headline_growth, headline_base):
    """Window sampling through the base's normalised store vs materialising
    every window of a freshly re-normalised collection."""
    via_base = benchmark.pedantic(
        recommend_thresholds,
        args=(headline_growth, 6),
        kwargs={"base": headline_base},
        rounds=5,
        iterations=1,
    )
    t_standalone, standalone = _timed(
        lambda: recommend_thresholds(headline_growth, 6), repeats=5
    )
    t_base, _ = _timed(
        lambda: recommend_thresholds(headline_growth, 6, base=headline_base),
        repeats=5,
    )
    assert via_base == standalone, "base sampler changed the recommendation"
    benchmark.extra_info["standalone_seconds"] = round(t_standalone, 5)
    benchmark.extra_info["speedup_vs_standalone"] = round(
        t_standalone / t_base, 2
    )
