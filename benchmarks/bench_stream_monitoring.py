"""E13 (reference [7]): stream monitoring under DTW with SPRING.

The paper's state-of-the-art section cites Sakurai et al.'s exact stream
monitor; this bench characterises it on the electricity stream: per-sample
cost (O(pattern length) as published), end-to-end detection of the
household's planted habit pattern, and exactness of reported distances.
"""

import numpy as np
import pytest

from repro.baselines.spring import SpringMatcher
from repro.distances.dtw import dtw_distance


@pytest.fixture(scope="module")
def monitoring_setup(electricity):
    series = electricity["household-0"]
    length = series.metadata["pattern_length"]
    starts = series.metadata["pattern_starts"]
    # The pattern template: the first planted occurrence, level-removed
    # (the stream's seasonal level drifts across the year).
    values = series.values.astype(float)
    values = values - np.convolve(values, np.ones(45) / 45, mode="same")
    template = values[starts[0] : starts[0] + length]
    return values, template, starts, length


def test_per_sample_cost(benchmark, monitoring_setup):
    values, template, _, _ = monitoring_setup
    matcher = SpringMatcher(template, epsilon=len(template) * 0.5)
    chunk = values[:100]

    def run():
        for v in chunk:
            matcher.append(float(v))

    benchmark(run)
    benchmark.extra_info["pattern_length"] = len(template)
    benchmark.extra_info["samples_per_call"] = len(chunk)


def test_detection_quality(benchmark, monitoring_setup):
    values, template, starts, length = monitoring_setup

    def run():
        # ~2 kWh/point tolerance: the habit recurs with fresh noise and
        # level jitter, so occurrences sit tens of raw-DTW units apart.
        matcher = SpringMatcher(template, epsilon=len(template) * 2.0)
        return matcher.extend(values) + matcher.finish()

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    hits = sum(
        any(abs(m.start - s) <= length // 2 for m in matches) for s in starts
    )
    benchmark.extra_info["matches_reported"] = len(matches)
    benchmark.extra_info["planted_detected"] = f"{hits}/{len(starts)}"
    assert hits >= 3, "SPRING should recover most planted occurrences"
    # Exactness: every reported distance is the true subsequence DTW.
    for m in matches[:3]:
        true = dtw_distance(template, values[m.start : m.end + 1])
        assert m.distance == pytest.approx(true)
