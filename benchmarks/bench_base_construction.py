"""E7 (§3.1): base compaction and construction-guarantee ablation.

Sweeps the similarity threshold and records how the data reduction and
the invariants behave: every member within ``ST/2`` of its representative
(checked by ``validate()``), and compaction growing with ST.
"""

import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig


@pytest.mark.parametrize("st", [0.02, 0.05, 0.10, 0.20, 0.40])
def test_compaction_sweep(benchmark, matters_growth, st):
    config = BuildConfig(similarity_threshold=st, min_length=5, max_length=8)

    def build_and_validate():
        base = OnexBase(matters_growth, config)
        stats = base.build()
        base.validate()  # raises InvariantError if any guarantee fails
        return base, stats

    base, stats = benchmark.pedantic(build_and_validate, rounds=3, iterations=1)
    benchmark.extra_info["similarity_threshold"] = st
    benchmark.extra_info["groups"] = stats.groups
    benchmark.extra_info["compaction_ratio"] = round(stats.compaction_ratio, 2)
    # Radii never exceed the construction radius.
    worst = max(
        float(bucket.ed_radii.max()) for bucket in base.buckets()
    )
    benchmark.extra_info["max_member_radius"] = round(worst, 5)
    assert worst <= st / 2 + 1e-9


def test_compaction_monotone_in_threshold(benchmark, matters_growth):
    """Looser thresholds must never reduce the data-reduction factor."""

    def sweep():
        ratios = []
        for st in (0.05, 0.10, 0.20):
            base = OnexBase(
                matters_growth,
                BuildConfig(similarity_threshold=st, min_length=5, max_length=8),
            )
            ratios.append(base.build().compaction_ratio)
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["ratios"] = [round(r, 2) for r in ratios]
    assert ratios == sorted(ratios)
