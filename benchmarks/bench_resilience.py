"""E19: resilience — deadline overhead, cutoff latency, load shedding.

Three claims from the robustness layer, measured on the headline MATTERS
base: (1) carrying an ample deadline through the exact cascade costs
nothing measurable and never changes an answer — the budget checks are
pure control flow; (2) a 1 ms budget turns every long-running operation
into a structured :class:`DeadlineExceeded` within tens of
milliseconds — the cooperative checkpoints bound the worst-case overrun
to one chunk of work; (3) a server at 4x its admission cap sheds the
excess immediately with 503s while every accepted request still returns
the exact answer.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.core.deadline import Deadline
from repro.core.query import QueryProcessor
from repro.core.sensitivity import similarity_profile
from repro.exceptions import DeadlineExceeded
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService
from repro.testing import faults

GRID = (0.01, 0.05, 0.1, 0.2)


def test_ample_deadline_is_free_and_identical(benchmark, matters_base):
    """An un-pressed deadline changes neither answers nor (much) latency."""
    processor = QueryProcessor(matters_base, QueryConfig(mode="exact"))
    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(4)]
    ample = Deadline.after(120_000)

    def with_deadline():
        return [
            processor.best_match(q, normalize=False, deadline=ample)
            for q in queries
        ]

    guarded = benchmark(with_deadline)
    bare = [processor.best_match(q, normalize=False) for q in queries]
    assert [(m.ref, m.distance) for m in guarded] == [
        (m.ref, m.distance) for m in bare
    ], "an ample deadline changed exact-mode answers"
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["identical_to_undeadlined"] = True


def test_one_ms_budget_cuts_every_operation_fast(matters_base):
    """A 1 ms deadline yields a structured error in well under 100 ms."""
    processor = QueryProcessor(matters_base, QueryConfig(mode="exact"))
    query = [0.2, 0.5, 0.3, 0.6, 0.4]
    operations = {
        "best_match": lambda d: processor.best_match(
            query, normalize=False, deadline=d
        ),
        "k_best": lambda d: processor.k_best_matches(
            query, 5, normalize=False, deadline=d
        ),
        "matches_within": lambda d: processor.matches_within(
            query, 0.5, normalize=False, deadline=d
        ),
        "sensitivity": lambda d: similarity_profile(
            matters_base, query, GRID, normalize=False, deadline=d
        ),
    }
    for name, op in operations.items():
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as excinfo:
            op(Deadline.after(1.0))
        elapsed_ms = (time.perf_counter() - started) * 1e3
        assert elapsed_ms < 100.0, f"{name} overran its 1ms budget: {elapsed_ms:.1f}ms"
        assert excinfo.value.details()["stage"], name


def test_overload_sheds_fast_and_accepted_stay_exact(benchmark, matters_base):
    """Burst at 4x the admission cap: excess 503s return immediately."""
    service = OnexService()
    rng = np.random.default_rng(55)
    query = [float(v) for v in rng.uniform(size=6)]
    with OnexHttpServer(service, max_in_flight=2, max_queue=2) as server:

        def post(op, params):
            request = urllib.request.Request(
                server.url + "/api",
                json.dumps({"op": op, "params": params}).encode(),
                {"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=120) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        status, body = post(
            "load_dataset",
            {"source": "matters", "seed": 2013, "years": 16, "min_years": 10,
             "indicators": ["GrowthRate"], "similarity_threshold": 0.1,
             "min_length": 5, "max_length": 8},
        )
        assert status == 200 and body["ok"], body
        name = body["result"]["dataset"]
        want = post("best_match", {"dataset": name, "query": query})[1]["result"]

        def burst():
            outcomes = []
            lock = threading.Lock()

            def one():
                started = time.perf_counter()
                status, body = post(
                    "best_match", {"dataset": name, "query": query}
                )
                with lock:
                    outcomes.append(
                        (status, body, time.perf_counter() - started)
                    )

            with faults.inject("server.handle", "sleep", seconds=0.2):
                threads = [threading.Thread(target=one) for _ in range(8)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            return outcomes

        outcomes = benchmark.pedantic(burst, rounds=3, iterations=1)

    accepted = [(b, s) for code, b, s in outcomes if code == 200]
    shed = [(b, s) for code, b, s in outcomes if code == 503]
    assert accepted and shed, "the burst produced no shedding"
    for body, _ in accepted:
        assert body["result"]["distance"] == pytest.approx(want["distance"])
        assert body["result"]["exact"] is True
    shed_ms = sorted(seconds * 1e3 for _, seconds in shed)
    p99 = shed_ms[min(len(shed_ms) - 1, round(0.99 * len(shed_ms)))]
    # A shed answer never waits on the slow in-flight work (200ms here).
    assert p99 < 150.0, f"shed p99 {p99:.0f}ms is not bounded"
    benchmark.extra_info["accepted"] = len(accepted)
    benchmark.extra_info["shed"] = len(shed)
    benchmark.extra_info["shed_p99_ms"] = round(p99, 2)
