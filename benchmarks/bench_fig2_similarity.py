"""E2 (Fig. 2): interactive similarity-search latency.

The Similarity View's responsiveness rests on answering a brushed query
against the compact base instead of the raw data.  We measure the
brush-to-answer latency for ONEX (fast and exact modes) against the two
non-indexed alternatives on the same collection and query.
"""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.data.dataset import SubsequenceRef
from repro.viz.payloads import similarity_view_payload

#: The brushed query: MA's recent growth-rate window (series index found
#: by name in the fixtures' dataset; length 6 as in the demo narrative).
QUERY_LENGTH = 6


@pytest.fixture(scope="module")
def query_ref(matters_base):
    index = matters_base.dataset.index_of("MA/GrowthRate")
    series_len = len(matters_base.dataset[index])
    return SubsequenceRef(index, series_len - QUERY_LENGTH, QUERY_LENGTH)


def test_onex_fast_query(benchmark, matters_fast_processor, query_ref):
    match = benchmark(matters_fast_processor.best_match, query_ref)
    benchmark.extra_info["distance"] = round(match.distance, 5)
    benchmark.extra_info["match"] = match.series_name


def test_onex_exact_query(benchmark, matters_exact_processor, query_ref):
    match = benchmark(matters_exact_processor.best_match, query_ref)
    benchmark.extra_info["distance"] = round(match.distance, 5)


def test_brute_force_query(benchmark, matters_base, query_ref):
    searcher = BruteForceSearcher(matters_base.dataset)
    q = matters_base.dataset.values(query_ref)
    match = benchmark(searcher.best_match, q, matters_base.lengths)
    benchmark.extra_info["distance"] = round(match.distance, 5)


def test_ucr_suite_query(benchmark, matters_base, query_ref):
    """UCR Suite answers the fixed-length z-normalised variant."""
    searcher = UcrSuiteSearcher(matters_base.dataset)
    q = np.asarray(matters_base.dataset.values(query_ref))
    match = benchmark(searcher.best_match, q)
    benchmark.extra_info["match"] = match.series_name


def test_results_pane_payload(benchmark, matters_base, matters_fast_processor, query_ref):
    """Building the Fig. 2 Results Pane payload from a finished match."""
    match = matters_fast_processor.best_match(query_ref)
    q = matters_base.dataset.values(query_ref)
    m = matters_base.member_values(match.ref)
    payload = benchmark(similarity_view_payload, q, m, match)
    benchmark.extra_info["connectors"] = len(payload["connectors"])
