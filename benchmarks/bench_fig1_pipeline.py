"""E1 (Fig. 1): the preprocessing pipeline — dataset to ONEX base.

Measures the offline phase of the architecture diagram: loading the
MATTERS GrowthRate collection and encoding it into similarity groups.
The paper's claim is qualitative (preprocessing at load time buys
interactive exploration later); we record build time and the compaction
the online phase will enjoy.
"""

import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig


@pytest.mark.parametrize("st", [0.05, 0.10, 0.20])
def test_base_build(benchmark, matters_growth, st):
    config = BuildConfig(similarity_threshold=st, min_length=5, max_length=8)

    def build():
        base = OnexBase(matters_growth, config)
        return base.build()

    stats = benchmark(build)
    benchmark.extra_info["similarity_threshold"] = st
    benchmark.extra_info["subsequences"] = stats.subsequences
    benchmark.extra_info["groups"] = stats.groups
    benchmark.extra_info["compaction_ratio"] = round(stats.compaction_ratio, 2)


def test_full_pipeline_load(benchmark, matters_growth):
    """Dataset -> normalise -> cluster -> queryable engine, end to end."""
    from repro.core.engine import OnexEngine

    def load():
        engine = OnexEngine()
        ds = matters_growth
        # Engines reject duplicate names; fresh engine per round.
        stats = engine.load_dataset(
            ds, similarity_threshold=0.1, min_length=5, max_length=8
        )
        engine.unload_dataset(ds.name)
        return stats

    stats = benchmark(load)
    benchmark.extra_info["groups"] = stats.groups
