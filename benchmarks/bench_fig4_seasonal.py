"""E4 (Fig. 4): seasonal-pattern mining on a year of electricity data.

The Seasonal View finds recurring monthly habits in one household's
year.  We measure the end-to-end seasonal query and score recovered
patterns against the generator's planted ground truth.
"""

import pytest

from repro.core.seasonal import find_seasonal_patterns


@pytest.fixture(scope="module")
def household(electricity):
    return electricity["household-0"]


def test_seasonal_query(benchmark, household):
    length = household.metadata["pattern_length"]

    patterns = benchmark.pedantic(
        find_seasonal_patterns,
        args=(household, length, 0.06),
        kwargs={"step": 2, "remove_level": True, "ed_threshold": 0.18,
                "max_patterns": 5},
        rounds=3,
        iterations=1,
    )
    truth = household.metadata["pattern_starts"]

    def planted_hits(pattern):
        return sum(
            any(abs(s - t) <= length // 3 for t in truth) for s in pattern.starts
        )

    benchmark.extra_info["patterns_found"] = len(patterns)
    benchmark.extra_info["best_occurrences"] = (
        patterns[0].occurrences if patterns else 0
    )
    benchmark.extra_info["planted_recovered"] = (
        max((planted_hits(p) for p in patterns), default=0)
    )
    benchmark.extra_info["planted_total"] = len(truth)
    assert patterns, "seasonal query must find recurring structure"


def test_seasonal_query_weekly_scale(benchmark, household):
    """Week-scale recurrences (the 'consistent manner' observation)."""
    patterns = benchmark.pedantic(
        find_seasonal_patterns,
        args=(household, 7, 0.05),
        kwargs={"step": 2, "remove_level": True, "max_patterns": 5},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["patterns_found"] = len(patterns)
