"""E22: pluggable-metric query cost and exactness (PR 9).

Two measurements back the multivariate + metric-registry claims:

1. **Per-metric latency and exactness.**  For every registered metric,
   time ``best_match`` through the engine and verify the answer against
   a naive scan that applies the metric's own pair kernel to every
   indexed member.  For the metrics without a lower-bound family
   (``derivative_dtw``, ``weighted_dtw``) this brute-force agreement is
   the *only* correctness guarantee, so the run-all harness gates on it.

2. **Multivariate overhead.**  The same series indexed once as C
   univariate channels-concatenated rows and once as a single C-channel
   base; the ratio of per-query DTW latency is the cost of the
   channel-flattened layout (DESIGN.md §9).

Importable (``run_metrics``) for ``run_all.py`` and runnable directly::

    PYTHONPATH=src python benchmarks/bench_metrics.py --quick
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.config import QueryConfig
from repro.core.engine import OnexEngine
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.distances.registry import get_metric, registered_metrics

QUICK = {"series": 8, "length": 60, "queries": 3, "repeats": 1}
FULL = {"series": 20, "length": 120, "queries": 5, "repeats": 3}


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _dataset(config: dict, channels: int, name: str) -> TimeSeriesDataset:
    rng = np.random.default_rng(90)
    shape = (
        (config["length"],)
        if channels == 1
        else (config["length"], channels)
    )
    return TimeSeriesDataset(
        [
            TimeSeries(f"s{i}", rng.normal(size=shape).cumsum(axis=0))
            for i in range(config["series"])
        ],
        name=name,
    )


def _naive_best(base, metric: str, query: np.ndarray) -> float:
    """Ground truth: the metric's pair kernel over every indexed member."""
    spec = get_metric(metric)
    best = math.inf
    for bucket in base.buckets():
        if not spec.elastic and bucket.length != query.shape[0]:
            continue
        for group in bucket.groups:
            for ref in group.members:
                _, norm = spec.pair(query, base.dataset.values(ref), None)
                best = min(best, norm)
    return best


def run_metrics(config: dict) -> dict:
    engine = OnexEngine()
    dataset = _dataset(config, channels=1, name="metrics-uni")
    engine.load_dataset(dataset, min_length=8, max_length=12)
    base = engine.base(dataset.name)
    lo, hi = base.normalization_bounds
    # Default univariate DTW routes through the ONEX cascade, whose fast
    # mode is approximate by design; brute-force agreement for "dtw" is
    # therefore checked through an exact-mode engine.  Every other
    # metric takes the registry scan, exact in either mode.
    exact_engine = OnexEngine(QueryConfig(mode="exact"))
    exact_engine.load_dataset(
        _dataset(config, channels=1, name="metrics-uni-exact"),
        min_length=8,
        max_length=12,
    )

    rng = np.random.default_rng(17)
    queries = [
        rng.normal(size=9).cumsum() for _ in range(config["queries"])
    ]

    per_metric: dict[str, dict] = {}
    for metric in registered_metrics():
        # Warm the per-metric processor cache, then measure steady state.
        engine.best_match(dataset.name, queries[0], metric=metric)
        seconds = _timed(
            lambda m=metric: [
                engine.best_match(dataset.name, q, metric=m)
                for q in queries
            ],
            config["repeats"],
        )
        exact = True
        for q in queries:
            if metric == "dtw":
                got = exact_engine.best_match(
                    "metrics-uni-exact", q, metric=metric
                )
            else:
                got = engine.best_match(dataset.name, q, metric=metric)
            naive = _naive_best(base, metric, (np.asarray(q) - lo) / (hi - lo))
            if not math.isclose(
                got.distance, naive, rel_tol=1e-9, abs_tol=1e-9
            ):
                exact = False
        spec = get_metric(metric)
        per_metric[metric] = {
            "query_seconds": round(seconds, 4),
            "per_query_ms": round(seconds / len(queries) * 1e3, 3),
            "has_lower_bound": spec.lower_bound is not None,
            "has_batch_kernel": spec.batch is not None,
            "exact_vs_brute_force": exact,
        }

    # Multivariate overhead: one 2-channel base vs one univariate base of
    # the same total point count (2x series), default DTW path in both.
    mv = _dataset(config, channels=2, name="metrics-mv")
    engine.load_dataset(mv, min_length=8, max_length=12)
    mv_base = engine.base(mv.name)
    mv_lo, mv_hi = mv_base.normalization_bounds
    mv_queries = [
        rng.normal(size=(9, 2)).cumsum(axis=0)
        for _ in range(config["queries"])
    ]
    engine.best_match(mv.name, mv_queries[0])
    t_mv = _timed(
        lambda: [engine.best_match(mv.name, q) for q in mv_queries],
        config["repeats"],
    )
    mv_exact = True
    for q in mv_queries:
        got = engine.best_match(mv.name, q)
        naive = _naive_best(
            mv_base, "dtw", (np.asarray(q) - mv_lo) / (mv_hi - mv_lo)
        )
        if not math.isclose(got.distance, naive, rel_tol=1e-9, abs_tol=1e-9):
            mv_exact = False
    t_uni = per_metric["dtw"]["query_seconds"]

    return {
        "config": {k: config[k] for k in ("series", "length", "queries")},
        "per_metric": per_metric,
        "all_metrics_exact": all(
            entry["exact_vs_brute_force"] for entry in per_metric.values()
        ),
        "multivariate": {
            "channels": 2,
            "query_seconds": round(t_mv, 4),
            "per_query_ms": round(t_mv / len(mv_queries) * 1e3, 3),
            "overhead_vs_univariate": round(t_mv / t_uni, 2) if t_uni else None,
            "exact_vs_brute_force": mv_exact,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    report = run_metrics(QUICK if args.quick else FULL)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
    if not report["all_metrics_exact"]:
        print("ERROR: a metric scan diverged from brute force", file=sys.stderr)
        return 1
    if not report["multivariate"]["exact_vs_brute_force"]:
        print(
            "ERROR: multivariate DTW diverged from brute force",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
