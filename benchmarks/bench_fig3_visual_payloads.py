"""E3 (Fig. 3): the linked-view payloads for a matched pair.

Fig. 3 contrasts the same matched pair (the demo uses MA vs ARK tech
employment) across the Radial Chart and Connected Scatter Plot.  We
measure payload/SVG generation — the client-side interactivity budget —
and record the scatter's diagonal-deviation closeness diagnostic.
"""

import pytest

from repro.data.dataset import SubsequenceRef
from repro.viz.payloads import connected_scatter_payload, radial_chart_payload
from repro.viz.svg import svg_connected_scatter, svg_radial_chart


@pytest.fixture(scope="module")
def matched_pair(matters_base, matters_fast_processor):
    index = matters_base.dataset.index_of("MA/GrowthRate")
    ref = SubsequenceRef(index, 0, 8)
    match = matters_fast_processor.best_match(ref)
    return (
        matters_base.dataset.values(ref),
        matters_base.member_values(match.ref),
        match,
    )


def test_radial_chart_payload(benchmark, matched_pair):
    _, match_values, match = matched_pair
    payload = benchmark(radial_chart_payload, match_values, label=match.series_name)
    benchmark.extra_info["points"] = len(payload["points"])


def test_connected_scatter_payload(benchmark, matched_pair):
    query, match_values, match = matched_pair
    payload = benchmark(connected_scatter_payload, query, match_values, match)
    benchmark.extra_info["diagonal_deviation"] = round(
        payload["diagonal_deviation"], 5
    )


def test_radial_chart_svg(benchmark, matched_pair, tmp_path):
    _, match_values, _ = matched_pair
    benchmark(svg_radial_chart, match_values, tmp_path / "radial.svg")


def test_connected_scatter_svg(benchmark, matched_pair, tmp_path):
    query, match_values, match = matched_pair
    payload = connected_scatter_payload(query, match_values, match)
    benchmark(svg_connected_scatter, payload["points"], tmp_path / "scatter.svg")
