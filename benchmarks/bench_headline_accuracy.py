"""E6 (headline): "up to 19% more accurate results".

The accuracy claim concerns misaligned, variable-length exploration: the
UCR Suite answers a *fixed-length, z-normalised* nearest neighbour, so on
time-warped value-space workloads its returned window is systematically
farther (under the analyst's normalised-DTW metric) from the query than
ONEX's answer.  We score every searcher's returned match against the
exact optimum from the brute-force scan:

    error(system)  = mean over queries of (d_system - d_optimal)
    accuracy gain  = (err_baseline - err_onex) / d_optimal-scale

EXPERIMENTS.md records the measured gains next to the paper's "up to
19%".
"""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearcher
from repro.baselines.embedding import EmbeddingSearcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.distances.dtw import dtw_path

from conftest import make_warped_workload

LENGTHS = range(10, 15)  # candidate lengths indexed by ONEX / scanned by brute


@pytest.fixture(scope="module")
def workload():
    dataset, queries = make_warped_workload(series=12, length=40, queries=6, seed=9)
    normalized = dataset.normalized()
    base = OnexBase(
        dataset,
        BuildConfig(
            similarity_threshold=0.1,
            min_length=min(LENGTHS),
            max_length=max(LENGTHS),
        ),
    )
    base.build()
    lo, hi = dataset.global_bounds()
    queries_norm = [(np.asarray(q) - lo) / (hi - lo) for q in queries]
    return dataset, normalized, base, queries_norm


def value_space_distance(query, dataset, ref) -> float:
    """The analyst's metric: normalised DTW in the shared value space."""
    return dtw_path(query, dataset.values(ref)).normalized_distance


def evaluate(matcher, queries, dataset):
    """Mean value-space distance of the matches a system returns."""
    distances = []
    for q in queries:
        ref = matcher(q)
        distances.append(value_space_distance(q, dataset, ref))
    return float(np.mean(distances))


def test_accuracy_comparison(benchmark, workload):
    dataset, normalized, base, queries = workload
    onex = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    brute = BruteForceSearcher(normalized)
    ucr = UcrSuiteSearcher(normalized)
    embed = EmbeddingSearcher(
        normalized, LENGTHS, references=6, verify_fraction=0.02, seed=3
    )

    def run():
        d_opt = evaluate(
            lambda q: brute.best_match(q, LENGTHS).ref, queries, normalized
        )
        d_onex = evaluate(
            lambda q: onex.best_match(q, normalize=False).ref, queries, normalized
        )
        d_ucr = evaluate(lambda q: ucr.best_match(q).ref, queries, normalized)
        d_embed = evaluate(lambda q: embed.best_match(q).ref, queries, normalized)
        return d_opt, d_onex, d_ucr, d_embed

    d_opt, d_onex, d_ucr, d_embed = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["optimal_mean_distance"] = round(d_opt, 5)
    benchmark.extra_info["onex_mean_distance"] = round(d_onex, 5)
    benchmark.extra_info["ucr_mean_distance"] = round(d_ucr, 5)
    benchmark.extra_info["embedding_mean_distance"] = round(d_embed, 5)
    gain_vs_ucr = (d_ucr - d_onex) / d_ucr if d_ucr > 0 else 0.0
    benchmark.extra_info["onex_gain_vs_ucr_pct"] = round(100 * gain_vs_ucr, 1)

    # The reproduction target: ONEX at least matches the exact optimum's
    # neighbourhood while the fixed-length z-normalised baseline trails.
    assert d_onex <= d_ucr + 1e-9, "ONEX should be at least as accurate as UCR"
    assert d_onex - d_opt <= base.config.similarity_threshold


def test_within_threshold_rate(benchmark, workload):
    """How often each system's answer is within ST of the true optimum."""
    dataset, normalized, base, queries = workload
    st = base.config.similarity_threshold
    onex = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    brute = BruteForceSearcher(normalized)
    ucr = UcrSuiteSearcher(normalized)

    def run():
        onex_ok = ucr_ok = 0
        for q in queries:
            d_opt = value_space_distance(
                q, normalized, brute.best_match(q, LENGTHS).ref
            )
            d_on = value_space_distance(
                q, normalized, onex.best_match(q, normalize=False).ref
            )
            d_uc = value_space_distance(q, normalized, ucr.best_match(q).ref)
            onex_ok += d_on <= d_opt + st
            ucr_ok += d_uc <= d_opt + st
        return onex_ok, ucr_ok

    onex_ok, ucr_ok = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["onex_within_st"] = f"{onex_ok}/{len(queries)}"
    benchmark.extra_info["ucr_within_st"] = f"{ucr_ok}/{len(queries)}"
    assert onex_ok >= ucr_ok
