"""E20: serving observability — concurrent load, /metrics, tracing cost.

Three claims from the observability layer, measured end to end:

1. **Load + exposition.**  A pool of concurrent clients sustains mixed
   query traffic against a real :class:`OnexHttpServer`; the server's
   ``/metrics`` scrape must be valid Prometheus text whose request
   counter accounts for every client-observed completion, and whose
   ``onex_server_request_ms`` histogram yields p50/p99 estimates
   consistent with the client-side latencies.  Counters are monotone
   across scrapes (before vs after the burst).
2. **Tracing is pure observation.**  The same queries answered untraced
   and inside an activated trace return bit-identical matches; the
   traced run's slowdown is reported, not gated (wall-clock noise), but
   identity is a hard failure.
3. **Disabled tracing is free.**  With no trace active, ``span(...)``
   costs one thread-local read and a shared null object.  The measured
   per-span cost times the spans a typical query would have emitted must
   stay under 2% of that query's latency — the PR's overhead gate.

Run directly (``python benchmarks/bench_serving_load.py``) for one JSON
document, or through ``run_all.py`` which embeds the same sections in
``BENCH_pr7.json``; the ``test_*`` wrappers give CI a cheap smoke.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.matters import build_matters_collection
from repro.obs.metrics import histogram_quantile, parse_exposition
from repro.obs.trace import NULL_SPAN, span, tracing
from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService

LOAD_PARAMS = {
    "source": "matters",
    "seed": 5,
    "years": 16,
    "min_years": 10,
    "indicators": ["GrowthRate"],
    "similarity_threshold": 0.2,
    "min_length": 5,
    "max_length": 8,
}


def _counter_sum(parsed: dict, name: str, **labels) -> float:
    """Sum of a parsed metric's series matching all given label pairs."""
    want = set(labels.items())
    return sum(
        value
        for key, value in parsed.get(name, {}).items()
        if want <= set(key)
    )


def _hist_buckets(parsed: dict, name: str, **labels) -> list[tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs of one histogram's bucket series."""
    out = []
    for key, value in parsed.get(f"{name}_bucket", {}).items():
        pairs = dict(key)
        if all(pairs.get(k) == v for k, v in labels.items()):
            out.append((float(pairs["le"].replace("+Inf", "inf")), value))
    return sorted(out)


def _monotone(before: dict, after: dict) -> bool:
    """Every counter/histogram series present before must not decrease."""
    ok = True
    for name, series in before.items():
        if name.endswith("_info") or "_in_flight" in name or "uptime" in name:
            continue  # gauges may move either way
        for key, value in series.items():
            ok = ok and after.get(name, {}).get(key, 0.0) >= value
    return ok


def run_serving_load(
    clients: int = 4, requests_per_client: int = 25, mode: str = "exact"
) -> dict:
    """Concurrent k_best/best_match traffic; scrape-validated metrics."""
    service = OnexService(QueryConfig(mode=mode))
    with OnexHttpServer(service, max_in_flight=8, max_queue=64) as server:
        admin = OnexClient(server.url)
        loaded = admin.call("load_dataset", LOAD_PARAMS)
        dataset = loaded["dataset"]
        admin.call(  # warm the query path before timing anything
            "k_best", {"dataset": dataset, "query": [0.2, 0.5, 0.3, 0.6], "k": 3}
        )
        before = parse_exposition(admin.scrape_metrics())

        latencies: list[list[float]] = [[] for _ in range(clients)]
        errors: list[int] = [0] * clients

        def worker(idx: int) -> None:
            client = OnexClient(server.url, max_retries=6)
            rng = np.random.default_rng(100 + idx)
            for i in range(requests_per_client):
                q = [float(v) for v in rng.uniform(size=6)]
                started = time.perf_counter()
                try:
                    if i % 2:
                        client.call(
                            "k_best", {"dataset": dataset, "query": q, "k": 3}
                        )
                    else:
                        client.call("best_match", {"dataset": dataset, "query": q})
                except Exception:
                    errors[idx] += 1
                    continue
                latencies[idx].append((time.perf_counter() - started) * 1e3)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        wall_started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_started

        after_text = admin.scrape_metrics()
        after = parse_exposition(after_text)
        health = admin.health()

    flat = sorted(v for chunk in latencies for v in chunk)
    completed = len(flat)
    served_delta = _counter_sum(
        after, "onex_server_requests_total", code="200"
    ) - _counter_sum(before, "onex_server_requests_total", code="200")
    buckets = _hist_buckets(after, "onex_server_request_ms", op="k_best")
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": completed,
        "errors": sum(errors),
        "wall_seconds": round(wall, 3),
        "qps": round(completed / wall, 1) if wall > 0 else None,
        "client_p50_ms": round(flat[len(flat) // 2], 3) if flat else None,
        "client_p99_ms": (
            round(flat[min(len(flat) - 1, int(0.99 * len(flat)))], 3)
            if flat
            else None
        ),
        "server_p50_ms": round(histogram_quantile(buckets, 0.50), 3),
        "server_p99_ms": round(histogram_quantile(buckets, 0.99), 3),
        "scrape_parseable": True,  # parse_exposition raised otherwise
        "scrape_bytes": len(after_text),
        "counters_monotone": _monotone(before, after),
        # The burst ran between the scrapes, so the request counter must
        # have grown by at least the client-observed completions (the
        # warmup and admin calls may add more).
        "counter_accounts_for_load": served_delta >= completed,
        "health_version": health.get("version"),
        "health_uptime_s": health.get("uptime_s"),
        "health_fingerprints": sorted(health.get("fingerprints", {})),
    }


def run_tracing_overhead(repeats: int = 3, queries: int = 8) -> dict:
    """Traced vs untraced identity + the disabled-path per-span cost."""
    dataset = build_matters_collection(
        indicators=("GrowthRate",), years=16, min_years=10, seed=5
    )
    base = OnexBase(
        dataset,
        BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8),
    )
    base.build()
    processor = QueryProcessor(base, QueryConfig(mode="exact"))
    rng = np.random.default_rng(55)
    qs = [rng.uniform(size=6) for _ in range(queries)]

    def run_untraced():
        return [processor.k_best_matches(q, k=3, normalize=False) for q in qs]

    def run_traced():
        out = []
        for i, q in enumerate(qs):
            with tracing(f"bench-{i}") as trace:
                out.append(processor.k_best_matches(q, k=3, normalize=False))
            span_counts.append(trace.span_count())
        return out

    t_off = t_on = float("inf")
    baseline = traced = None
    span_counts: list[int] = []
    for _ in range(repeats):
        span_counts.clear()
        started = time.perf_counter()
        baseline = run_untraced()
        t_off = min(t_off, time.perf_counter() - started)
        started = time.perf_counter()
        traced = run_traced()
        t_on = min(t_on, time.perf_counter() - started)

    identical = [
        [(m.ref, m.distance) for m in group] for group in baseline
    ] == [[(m.ref, m.distance) for m in group] for group in traced]

    # Disabled-path cost: one span() call with no trace active.  The
    # loop uses the real entry point, so the thread-local read, the
    # null-singleton return, and the with-block overhead are all in.
    probes = 200_000
    started = time.perf_counter()
    for _ in range(probes):
        with span("bench.noop", x=1):
            pass
    null_span_ns = (time.perf_counter() - started) / probes * 1e9
    assert span("bench.noop") is NULL_SPAN  # guard: nothing was recording

    per_query_ms = t_off / queries * 1e3
    spans_per_query = max(span_counts) if span_counts else 0
    disabled_cost_ms = spans_per_query * null_span_ns / 1e6
    overhead_pct = (
        100.0 * disabled_cost_ms / per_query_ms if per_query_ms else math.inf
    )
    return {
        "queries": queries,
        "identical_traced_vs_untraced": identical,
        "untraced_ms_per_query": round(per_query_ms, 3),
        "traced_ms_per_query": round(t_on / queries * 1e3, 3),
        "traced_slowdown_pct": round(100.0 * (t_on - t_off) / t_off, 2),
        "spans_per_query": spans_per_query,
        "null_span_ns": round(null_span_ns, 1),
        # The gate: what those spans would cost a query when tracing is
        # off, as a share of the query's untraced latency.
        "disabled_overhead_pct": round(overhead_pct, 4),
        "disabled_overhead_under_2pct": overhead_pct < 2.0,
    }


def test_serving_load_smoke():
    report = run_serving_load(clients=2, requests_per_client=5)
    assert report["errors"] == 0
    assert report["counters_monotone"]
    assert report["counter_accounts_for_load"]
    assert report["server_p50_ms"] == report["server_p50_ms"]  # not NaN


def test_tracing_overhead_smoke():
    report = run_tracing_overhead(repeats=1, queries=3)
    assert report["identical_traced_vs_untraced"]
    assert report["spans_per_query"] > 0
    assert report["disabled_overhead_under_2pct"]


if __name__ == "__main__":
    print(
        json.dumps(
            {
                "serving_load": run_serving_load(),
                "tracing_overhead": run_tracing_overhead(),
            },
            indent=2,
        )
    )
