"""E5 (headline): "several times faster than the fastest known method".

The paper's speed claim compares ONEX's online phase against the UCR
Suite.  We time best-match queries for both (plus the pruned raw scan)
over the same collection at two scales and report the speedup factor.
The absolute numbers are ours; the claim's *shape* — ONEX's per-query
latency a small multiple lower, widening with data size — is the
reproduction target (EXPERIMENTS.md records the measured factors).

``test_member_refinement_speedup`` additionally pins this repo's own
hot-path rewrite: on a member-refinement-heavy configuration (exact
mode, every group refined unless provably prunable) the batched
lower-bound cascade must return matches identical to the legacy
per-member scan and be at least 5x faster.
"""

import os
import time

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection

SCALES = {"small": 20, "large": 50}


def make_setup(states: int, years: int = 16):
    dataset = build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[:states],
        years=years,
        min_years=max(10, years - 6),
        seed=5,
    )
    # ST = 0.2 gives the strong-compaction regime the paper's speed claim
    # lives in (the recommender's looser suggestions land near here for
    # this collection); E7 sweeps the full ST range.
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8)
    )
    base.build()
    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(3)]
    return dataset, base, queries


@pytest.fixture(scope="module", params=sorted(SCALES))
def setup(request):
    return request.param, *make_setup(SCALES[request.param])


def test_onex_query(benchmark, setup):
    scale, dataset, base, queries = setup
    processor = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))

    def run():
        return [processor.best_match(q, normalize=False) for q in queries]

    benchmark(run)
    benchmark.extra_info["scale"] = f"{scale} ({len(dataset)} series)"
    benchmark.extra_info["representatives"] = base.stats.groups


def test_ucr_suite_query(benchmark, setup):
    scale, dataset, base, queries = setup
    searcher = UcrSuiteSearcher(base.dataset)

    def run():
        return [searcher.best_match(q) for q in queries]

    benchmark(run)
    benchmark.extra_info["scale"] = f"{scale} ({len(dataset)} series)"


def test_brute_force_query(benchmark, setup):
    scale, dataset, base, queries = setup
    searcher = BruteForceSearcher(base.dataset)

    def run():
        return [searcher.best_match(q, base.lengths) for q in queries]

    benchmark(run)
    benchmark.extra_info["scale"] = f"{scale} ({len(dataset)} series)"


def test_member_refinement_speedup(benchmark):
    """Batched member cascade vs the legacy per-member scan (PR 1 rewrite).

    Exact mode is the member-refinement-heavy regime: every group whose
    transfer lower bound cannot rule it out is refined exhaustively, so
    per-member DTW dominates the legacy path.  The batched path must be
    result-identical (same ref, distance within 1e-9) and >= 5x faster.
    """
    dataset, base, _ = make_setup(SCALES["large"], years=40)
    rng = np.random.default_rng(97)
    queries = [rng.uniform(size=6) for _ in range(3)]
    batched = QueryProcessor(base, QueryConfig(mode="exact"))
    legacy = QueryProcessor(
        base, QueryConfig(mode="exact", use_member_batching=False)
    )

    def timed(processor):
        start = time.perf_counter()
        matches = [processor.best_match(q, normalize=False) for q in queries]
        return time.perf_counter() - start, matches

    def measure():
        t_batched, m_batched = timed(batched)
        t_legacy, m_legacy = timed(legacy)
        return t_batched, t_legacy, m_batched, m_legacy

    t_batched, t_legacy, m_batched, m_legacy = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    for got, want in zip(m_batched, m_legacy):
        assert got.ref == want.ref, "batched cascade changed the best match"
        assert abs(got.distance - want.distance) < 1e-9
    assert (
        batched.last_stats.members_scanned == legacy.last_stats.members_scanned
    ), "work counters disagree on members considered"
    speedup = t_legacy / t_batched
    benchmark.extra_info["batched_seconds"] = round(t_batched, 4)
    benchmark.extra_info["legacy_seconds"] = round(t_legacy, 4)
    benchmark.extra_info["speedup_batched_vs_legacy"] = round(speedup, 2)
    benchmark.extra_info["members_scanned"] = batched.last_stats.members_scanned
    # Wall-clock ratios are noisy on shared CI runners; there the result
    # identity above is the gate and the factor is only reported
    # (ONEX_BENCH_SOFT=1).  Locally the 5x floor is asserted.
    if os.environ.get("ONEX_BENCH_SOFT") != "1":
        assert speedup >= 5.0, (
            f"batched member refinement only {speedup:.1f}x faster than legacy"
        )


def test_speedup_summary(benchmark):
    """One-shot measurement of the headline factors at a larger scale.

    Two readings are reported: ONEX answering its native variable-length
    question over every indexed length, and ONEX restricted to the
    query's own length — the exact question the UCR Suite answers, hence
    the apples-to-apples factor behind "several times faster".
    """
    dataset, base, queries = make_setup(SCALES["large"], years=40)
    onex = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    ucr = UcrSuiteSearcher(base.dataset)
    brute = BruteForceSearcher(base.dataset)
    qlen = len(queries[0])

    def timed(fn):
        start = time.perf_counter()
        for q in queries:
            fn(q)
        return time.perf_counter() - start

    def measure():
        return (
            timed(lambda q: onex.best_match(q, normalize=False)),
            timed(
                lambda q: onex.best_match(q, normalize=False, lengths=[qlen])
            ),
            timed(ucr.best_match),
            timed(lambda q: brute.best_match(q, base.lengths)),
        )

    t_onex, t_onex_1len, t_ucr, t_brute = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info["onex_all_lengths_seconds"] = round(t_onex, 4)
    benchmark.extra_info["onex_single_length_seconds"] = round(t_onex_1len, 4)
    benchmark.extra_info["ucr_seconds"] = round(t_ucr, 4)
    benchmark.extra_info["brute_seconds"] = round(t_brute, 4)
    benchmark.extra_info["speedup_vs_ucr_same_question"] = round(
        t_ucr / t_onex_1len, 2
    )
    benchmark.extra_info["speedup_vs_ucr_all_lengths"] = round(t_ucr / t_onex, 2)
    benchmark.extra_info["speedup_vs_brute"] = round(t_brute / t_onex, 2)
    assert t_onex_1len < t_ucr, "ONEX should beat UCR on UCR's own question"
