"""E23: multi-process serving — QPS scaling, identity, crash recovery.

Three claims from the worker-pool layer, measured end to end against a
real :class:`OnexHttpServer`:

1. **Identity.**  The same probe queries answered by a single-process
   server and by pools of every measured size return byte-identical
   JSON results — dispatching through forked workers over the mmap-
   shared base must never change an answer.
2. **Scaling.**  A burst of concurrent clients is driven at each worker
   count; QPS and client-side p50/p99 are reported.  The scaling ratio
   is informational (CI machines differ); identity and zero
   client-visible errors are the hard gates.
3. **Crash recovery.**  Under sustained load a worker is SIGKILLed; the
   retrying clients must see zero failures, and the pool must return to
   full capacity within the backoff budget (``recovery_budget_s``).

Run directly (``python benchmarks/bench_pool.py``) for one JSON
document, or through ``run_all.py`` which embeds the same sections in
``BENCH_pr10.json``; the ``test_*`` wrappers give CI a cheap smoke.
Set ``ONEX_BENCH_SOFT=1`` to demote the timing gates (not the identity
gates) to warnings on noisy machines.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.server.client import OnexClient
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService
from repro.server.supervisor import Supervisor

LOAD_PARAMS = {
    "source": "matters",
    "seed": 5,
    "years": 16,
    "min_years": 10,
    "indicators": ["GrowthRate"],
    "similarity_threshold": 0.2,
    "min_length": 5,
    "max_length": 8,
}

RECOVERY_BUDGET_S = 10.0


def _soft() -> bool:
    return os.environ.get("ONEX_BENCH_SOFT") == "1"


def _probe_queries(count: int = 6) -> list[list[float]]:
    rng = np.random.default_rng(77)
    return [
        [float(v) for v in rng.uniform(size=6)] for _ in range(count)
    ]


class _Deployment:
    """One server at a given worker count; ``workers=0`` is in-process."""

    def __init__(self, workers: int):
        self.workers = workers
        self.service = OnexService()
        self._tmp = None
        if workers > 0:
            self._tmp = tempfile.mkdtemp(prefix="onex-bench-pool-")
            self.facade = Supervisor(
                self.service,
                workers=workers,
                snapshot_root=Path(self._tmp),
                pool_options={
                    "backoff_base_s": 0.05,
                    "backoff_cap_s": 0.5,
                    "flap_threshold": 100,
                },
            )
        else:
            self.facade = self.service

    def __enter__(self) -> "_Deployment":
        self.server = OnexHttpServer(
            self.facade, max_in_flight=16, max_queue=64
        )
        self.server.start()
        self.admin = OnexClient(self.server.url, max_retries=6)
        self.dataset = self.admin.call("load_dataset", LOAD_PARAMS)["dataset"]
        if self.workers > 0:
            self.facade.start(timeout=120)
        # Warm the dispatch path (first pooled read publishes the base).
        self.admin.call(
            "best_match", {"dataset": self.dataset, "query": [0.2, 0.5, 0.3]}
        )
        return self

    def __exit__(self, *exc) -> None:
        self.server.stop()
        if self.workers > 0:
            self.facade.close()
            import shutil

            shutil.rmtree(self._tmp, ignore_errors=True)
        else:
            self.service.close()


def _burst(
    url: str, dataset: str, clients: int, requests_per_client: int
) -> dict:
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients

    def worker(idx: int) -> None:
        client = OnexClient(url, max_retries=6, retry_budget_s=30.0)
        rng = np.random.default_rng(500 + idx)
        for i in range(requests_per_client):
            q = [float(v) for v in rng.uniform(size=6)]
            started = time.perf_counter()
            try:
                if i % 2:
                    client.call(
                        "k_best", {"dataset": dataset, "query": q, "k": 3}
                    )
                else:
                    client.call(
                        "best_match", {"dataset": dataset, "query": q}
                    )
            except Exception:
                errors[idx] += 1
                continue
            latencies[idx].append((time.perf_counter() - started) * 1e3)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    flat = sorted(v for chunk in latencies for v in chunk)
    return {
        "completed": len(flat),
        "errors": sum(errors),
        "wall_seconds": round(wall, 3),
        "qps": round(len(flat) / wall, 1) if wall > 0 else None,
        "p50_ms": round(flat[len(flat) // 2], 3) if flat else None,
        "p99_ms": (
            round(flat[min(len(flat) - 1, int(0.99 * len(flat)))], 3)
            if flat
            else None
        ),
    }


def run_pool_scaling(
    worker_counts: tuple[int, ...] = (0, 2, 4),
    clients: int = 6,
    requests_per_client: int = 20,
) -> dict:
    """Burst each deployment size; probe answers must be identical."""
    probes = _probe_queries()
    reference: list[dict] | None = None
    points = []
    identical = True
    for workers in worker_counts:
        with _Deployment(workers) as dep:
            answers = [
                dep.admin.call(
                    "k_best", {"dataset": dep.dataset, "query": q, "k": 3}
                )
                for q in probes
            ]
            if reference is None:
                reference = answers
            elif answers != reference:
                identical = False
            burst = _burst(
                dep.server.url, dep.dataset, clients, requests_per_client
            )
            burst["workers"] = workers
            points.append(burst)
    base_qps = points[0]["qps"] or 0.0
    best_pooled = max(
        (p["qps"] or 0.0 for p in points if p["workers"] > 0), default=0.0
    )
    return {
        "worker_counts": list(worker_counts),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "points": points,
        "answers_identical_across_sizes": identical,
        "total_errors": sum(p["errors"] for p in points),
        "single_process_qps": base_qps,
        "best_pooled_qps": best_pooled,
        "pooled_vs_single_qps": (
            round(best_pooled / base_qps, 2) if base_qps else None
        ),
    }


def run_crash_recovery(
    workers: int = 2,
    clients: int = 3,
    load_seconds: float = 3.0,
    recovery_budget_s: float = RECOVERY_BUDGET_S,
) -> dict:
    """SIGKILL a worker under load; measure the window back to full."""
    with _Deployment(workers) as dep:
        stop = threading.Event()
        errors = [0] * clients
        completed = [0] * clients

        def worker(idx: int) -> None:
            client = OnexClient(
                dep.server.url, max_retries=8, retry_budget_s=30.0
            )
            rng = np.random.default_rng(900 + idx)
            while not stop.is_set():
                q = [float(v) for v in rng.uniform(size=6)]
                try:
                    client.call(
                        "best_match", {"dataset": dep.dataset, "query": q}
                    )
                    completed[idx] += 1
                except Exception:
                    errors[idx] += 1

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        for t in threads:
            t.start()
        time.sleep(load_seconds / 3)
        victim = next(p for p in dep.facade.pool.worker_pids() if p)
        killed_at = time.monotonic()
        os.kill(victim, signal.SIGKILL)
        recovered_at = None
        observed = False
        deadline = killed_at + recovery_budget_s
        # First wait until the supervisor has *observed* the death (a
        # crash counter moves) — only then does "back to full" mean a
        # restart happened rather than the kill going unnoticed so far.
        while time.monotonic() < deadline:
            status = dep.facade.pool_status()
            crashed = sum(w["crashes"] for w in status["workers"]) >= 1
            if not observed:
                observed = crashed
            if observed and dep.facade.pool.live_workers == workers:
                recovered_at = time.monotonic()
                break
            time.sleep(0.02)
        time.sleep(load_seconds / 3)
        stop.set()
        for t in threads:
            t.join(timeout=60)
        status = dep.facade.pool_status()
    time_to_full = (
        round(recovered_at - killed_at, 3) if recovered_at else None
    )
    return {
        "workers": workers,
        "clients": clients,
        "completed": sum(completed),
        "client_visible_errors": sum(errors),
        "time_to_full_capacity_s": time_to_full,
        "recovered_within_budget": recovered_at is not None,
        "recovery_budget_s": recovery_budget_s,
        "crashes": sum(w["crashes"] for w in status["workers"]),
        "restarts": sum(w["restarts"] for w in status["workers"]),
    }


def run_pool(
    worker_counts: tuple[int, ...] = (0, 2, 4),
    clients: int = 6,
    requests_per_client: int = 20,
) -> dict:
    return {
        "scaling": run_pool_scaling(
            worker_counts=worker_counts,
            clients=clients,
            requests_per_client=requests_per_client,
        ),
        "crash_recovery": run_crash_recovery(),
    }


def gates(report: dict) -> list[str]:
    """Hard-failure messages; timing gates soften under ONEX_BENCH_SOFT."""
    problems = []
    scaling = report["scaling"]
    if not scaling["answers_identical_across_sizes"]:
        problems.append(
            "pooled answers diverge from the single-process server"
        )
    if scaling["total_errors"]:
        problems.append("the scaling burst saw client-visible failures")
    crash = report["crash_recovery"]
    if crash["client_visible_errors"]:
        problems.append(
            "kill -9 under load lost acknowledged requests "
            f"({crash['client_visible_errors']} client-visible failures)"
        )
    if not crash["recovered_within_budget"]:
        message = (
            "pool did not return to full capacity within "
            f"{crash['recovery_budget_s']}s"
        )
        if _soft():
            print(f"WARN (soft): {message}", file=sys.stderr)
        else:
            problems.append(message)
    return problems


def test_pool_scaling_smoke():
    report = run_pool_scaling(
        worker_counts=(0, 2), clients=2, requests_per_client=4
    )
    assert report["answers_identical_across_sizes"]
    assert report["total_errors"] == 0


def test_pool_crash_recovery_smoke():
    report = run_crash_recovery(clients=2, load_seconds=1.5)
    assert report["client_visible_errors"] == 0
    assert report["crashes"] >= 1


def main() -> int:
    report = run_pool()
    print(json.dumps(report, indent=2))
    problems = gates(report)
    for message in problems:
        print(f"ERROR: {message}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
