"""E11 (§2): parameter-sensitivity exploration latency.

"Showing the changes in the similarity between sequences for varying
parameters" must be interactive across a whole threshold grid.  The
bounds-only profile answers from one representative pass; the verified
profile additionally resolves ambiguous members with exact DTW.  Both
are measured, plus how much of the collection the bounds decide for
free.
"""

import numpy as np
import pytest

from repro.core.sensitivity import similarity_profile
from repro.data.dataset import SubsequenceRef

GRID = (0.01, 0.02, 0.05, 0.1, 0.15, 0.2)


@pytest.fixture(scope="module")
def query(matters_base):
    index = matters_base.dataset.index_of("MA/GrowthRate")
    return SubsequenceRef(index, 0, 6)


def test_bounds_only_profile(benchmark, matters_base, query):
    profile = benchmark(similarity_profile, matters_base, query, GRID)
    benchmark.extra_info["candidates"] = profile.candidates
    benchmark.extra_info["knee"] = profile.knee()


def test_verified_profile(benchmark, matters_base, query):
    profile = benchmark(
        similarity_profile, matters_base, query, GRID, verify=True
    )
    truthy = [p for p in profile.points if p.exact is not None]
    assert len(truthy) == len(GRID)
    benchmark.extra_info["exact_counts"] = [p.exact for p in profile.points]


def test_bounds_decide_most_members(benchmark, matters_base, query):
    """How tight are the transfer bounds in practice?"""

    def run():
        profile = similarity_profile(matters_base, query, GRID)
        decided = 0
        total = profile.candidates * len(GRID)
        for point in profile.points:
            ambiguous = point.possible - point.certain
            decided += profile.candidates - ambiguous
        return decided / total

    rate = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["decided_fraction"] = round(rate, 3)
    assert rate > 0.5, "bounds should decide most member/threshold pairs"
