"""E9 (§3.3): query-processor optimisation ablation.

The paper names two online optimisations: bounding-envelope/endpoint
lower bounds and early pruning of unpromising candidate groups (the
ED→DTW transfer inequality).  We run the exact-mode query with each
toggled and record both latency and the work counters, verifying results
never change (the bounds are provable, so pruning is free accuracy-wise).
"""

import pytest

from repro.core.config import QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import SubsequenceRef

CONFIGS = {
    "all-on": QueryConfig(mode="exact", use_lower_bounds=True, use_group_pruning=True),
    "no-lower-bounds": QueryConfig(
        mode="exact", use_lower_bounds=False, use_group_pruning=True
    ),
    "no-group-pruning": QueryConfig(
        mode="exact", use_lower_bounds=True, use_group_pruning=False
    ),
    "no-rep-prefilter": QueryConfig(mode="exact", use_rep_prefilter=False),
    "all-off": QueryConfig(
        mode="exact",
        use_lower_bounds=False,
        use_group_pruning=False,
        use_rep_prefilter=False,
    ),
}


@pytest.fixture(scope="module")
def query_ref(matters_base):
    index = matters_base.dataset.index_of("MA/GrowthRate")
    return SubsequenceRef(index, 0, 6)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_pruning_ablation(benchmark, matters_base, query_ref, name):
    processor = QueryProcessor(matters_base, CONFIGS[name])
    match = benchmark(processor.best_match, query_ref)
    stats = processor.last_stats
    benchmark.extra_info["config"] = name
    benchmark.extra_info["distance"] = round(match.distance, 6)
    benchmark.extra_info["groups_pruned"] = stats.groups_pruned
    benchmark.extra_info["members_scanned"] = stats.members_scanned
    benchmark.extra_info["member_dtw_calls"] = stats.member_dtw_calls


def test_ablation_results_identical(benchmark, matters_base, query_ref):
    """Pruning must be behaviour-preserving: same match in every config."""

    def run():
        return [
            QueryProcessor(matters_base, cfg).best_match(query_ref)
            for cfg in CONFIGS.values()
        ]

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len({m.ref for m in matches}) == 1
    assert len({round(m.distance, 12) for m in matches}) == 1


def test_pruning_saves_member_scans(benchmark, matters_base, query_ref):
    """Quantify the work saved by the transfer-inequality group pruning."""

    def run():
        on = QueryProcessor(matters_base, CONFIGS["all-on"])
        off = QueryProcessor(matters_base, CONFIGS["all-off"])
        on.best_match(query_ref)
        off.best_match(query_ref)
        return on.last_stats.members_scanned, off.last_stats.members_scanned

    scanned_on, scanned_off = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["members_scanned_with_pruning"] = scanned_on
    benchmark.extra_info["members_scanned_without"] = scanned_off
    benchmark.extra_info["scan_reduction"] = (
        round(scanned_off / scanned_on, 2) if scanned_on else float("inf")
    )
    assert scanned_on <= scanned_off
