"""E10 (§1 challenge 1): scalability with data cardinality.

Times ONEX's online query as the collection grows, against the raw-scan
alternative, demonstrating that query cost tracks the (compact) group
count rather than the raw subsequence count.
"""

import pytest

from repro.baselines.brute_force import BruteForceSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection

SIZES = [10, 25, 50]


@pytest.fixture(scope="module", params=SIZES)
def sized_base(request):
    states = request.param
    dataset = build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[:states],
        years=16,
        min_years=10,
        seed=31,
    )
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.1, min_length=5, max_length=8)
    )
    base.build()
    return states, base


def test_onex_query_scaling(benchmark, sized_base):
    states, base = sized_base
    processor = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    query = [0.2, 0.4, 0.5, 0.45, 0.3, 0.25]
    benchmark(processor.best_match, query, normalize=False)
    benchmark.extra_info["states"] = states
    benchmark.extra_info["subsequences"] = base.stats.subsequences
    benchmark.extra_info["groups"] = base.stats.groups


def test_brute_scan_scaling(benchmark, sized_base):
    states, base = sized_base
    searcher = BruteForceSearcher(base.dataset)
    query = [0.2, 0.4, 0.5, 0.45, 0.3, 0.25]
    benchmark(searcher.best_match, query, base.lengths)
    benchmark.extra_info["states"] = states
    benchmark.extra_info["subsequences"] = base.stats.subsequences
