"""E12 (design ablation): arithmetic-mean vs DBA group representatives.

ONEX summarises each similarity group by the arithmetic centroid — the
natural average under ED, and cheap enough to maintain online during
construction.  The alternative is a DTW-faithful average (DBA).  This
ablation quantifies the trade-off on real groups from the MATTERS base:
how much tighter is the DBA representative under DTW, and what does it
cost to compute?  (DESIGN.md §3 S5 calls this choice out.)
"""

import numpy as np
import pytest

from repro.distances.dtw import dtw_distance
from repro.distances.variants import dtw_barycenter


@pytest.fixture(scope="module")
def populous_groups(matters_base):
    """The largest groups (>= 4 members) across the indexed lengths."""
    groups = [
        (bucket, group)
        for bucket in matters_base.buckets()
        for group in bucket.groups
        if group.cardinality >= 4
    ]
    groups.sort(key=lambda item: -item[1].cardinality)
    assert groups, "base should contain populous groups at this ST"
    return groups[:5]


def mean_member_dtw(base, group, representative):
    distances = [
        dtw_distance(base.member_values(ref), representative)
        for ref in group.members
    ]
    return float(np.mean(distances))


def test_dba_representatives_tighter_under_dtw(benchmark, matters_base, populous_groups):
    def run():
        mean_gaps = []
        for _, group in populous_groups:
            members = [matters_base.member_values(ref) for ref in group.members]
            dba = dtw_barycenter(members, iterations=8)
            d_mean = mean_member_dtw(matters_base, group, group.centroid)
            d_dba = mean_member_dtw(matters_base, group, dba)
            mean_gaps.append((d_mean, d_dba))
        return mean_gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_rep = float(np.mean([g[0] for g in gaps]))
    dba_rep = float(np.mean([g[1] for g in gaps]))
    benchmark.extra_info["mean_centroid_dtw"] = round(mean_rep, 5)
    benchmark.extra_info["dba_centroid_dtw"] = round(dba_rep, 5)
    benchmark.extra_info["dba_improvement_pct"] = (
        round(100 * (mean_rep - dba_rep) / mean_rep, 1) if mean_rep else 0.0
    )
    # DBA's mean-update step optimises a squared-loss surrogate along the
    # current alignments, so under the L1-ground metric reported here it
    # can land marginally above the arithmetic-mean centroid on a given
    # collection; assert it is at least competitive (within 2%).
    assert dba_rep <= mean_rep * 1.02 + 1e-9


def test_centroid_construction_cost(benchmark, matters_base, populous_groups):
    """The cost side of the trade-off: mean is free, DBA is iterative."""
    _, group = populous_groups[0]
    members = [matters_base.member_values(ref) for ref in group.members]

    benchmark(dtw_barycenter, members, iterations=8)
    benchmark.extra_info["members"] = len(members)
    benchmark.extra_info["note"] = (
        "arithmetic centroid is maintained incrementally at ~zero cost "
        "during the online scan; this is DBA's replacement cost per group"
    )
