"""E14 (§1 challenge 2, quantified): DTW vs ED on misaligned shape data.

The paper's premise is that meaningful comparison of misaligned
sequences *requires* an elastic distance.  The canonical quantification
is 1-NN classification on cylinder–bell–funnel, whose class identity is
a shape with randomised onset/duration: pointwise ED is blinded by the
misalignment that banded DTW absorbs.
"""

import pytest

from repro.analytics.knn import KnnClassifier
from repro.data.synthetic import cylinder_bell_funnel
from repro.distances.metrics import normalized_euclidean

KINDS = ("cylinder", "bell", "funnel")


@pytest.fixture(scope="module")
def cbf_split():
    def build(count, start_seed):
        data, labels = [], []
        seed = start_seed
        for kind in KINDS:
            for _ in range(count):
                data.append(cylinder_bell_funnel(kind, 64, noise=0.3, seed=seed))
                labels.append(kind)
                seed += 1
        return data, labels

    return build(10, 0), build(6, 500)


def test_dtw_1nn_accuracy(benchmark, cbf_split):
    (train_x, train_y), (test_x, test_y) = cbf_split
    clf = KnnClassifier(1, window=6).fit(train_x, train_y)
    accuracy = benchmark.pedantic(
        clf.score, args=(test_x, test_y), rounds=3, iterations=1
    )
    benchmark.extra_info["accuracy"] = round(accuracy, 3)
    assert accuracy >= 0.7


def test_ed_1nn_accuracy(benchmark, cbf_split):
    (train_x, train_y), (test_x, test_y) = cbf_split
    clf = KnnClassifier(1, distance=normalized_euclidean).fit(train_x, train_y)
    accuracy = benchmark.pedantic(
        clf.score, args=(test_x, test_y), rounds=3, iterations=1
    )
    benchmark.extra_info["accuracy"] = round(accuracy, 3)


def test_dtw_beats_ed(benchmark, cbf_split):
    """The headline premise: elastic matching wins on misaligned shapes."""
    (train_x, train_y), (test_x, test_y) = cbf_split

    def run():
        dtw_acc = KnnClassifier(1, window=6).fit(train_x, train_y).score(
            test_x, test_y
        )
        ed_acc = (
            KnnClassifier(1, distance=normalized_euclidean)
            .fit(train_x, train_y)
            .score(test_x, test_y)
        )
        return dtw_acc, ed_acc

    dtw_acc, ed_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dtw_accuracy"] = round(dtw_acc, 3)
    benchmark.extra_info["ed_accuracy"] = round(ed_acc, 3)
    assert dtw_acc >= ed_acc
