"""E8 (§3.3): data-driven threshold recommendation.

Measures the recommender's latency (it runs interactively when an analyst
loads unfamiliar data) and records how its suggestions differ across the
two demo domains — the motivation for the feature.
"""

from repro.core.threshold import recommend_thresholds


def test_recommend_matters(benchmark, matters_growth):
    rec = benchmark(recommend_thresholds, matters_growth, 6, samples=2000, seed=1)
    benchmark.extra_info["default_st"] = round(rec.default, 5)
    benchmark.extra_info["suggestions"] = {
        f"{int(q * 100)}%": round(t, 5)
        for q, t in zip(rec.quantiles, rec.thresholds)
    }


def test_recommend_electricity(benchmark, electricity):
    rec = benchmark(recommend_thresholds, electricity, 30, samples=2000, seed=1)
    benchmark.extra_info["default_st"] = round(rec.default, 5)


def test_domains_need_different_settings(benchmark, matters_growth, electricity):
    """The §3.3 narrative, quantified on raw (unnormalised) units."""

    def run():
        growth = recommend_thresholds(
            matters_growth, 6, normalize=False, seed=2
        ).default
        load = recommend_thresholds(
            electricity, 30, normalize=False, seed=2
        ).default
        return growth, load

    growth, load = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["matters_raw_st"] = round(growth, 4)
    benchmark.extra_info["electricity_raw_st"] = round(load, 4)
    assert growth != load
