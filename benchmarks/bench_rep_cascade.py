"""E16: representative-layer pruning cascade and multi-query throughput.

Three measurements pin the PR-3 rearchitecture:

- the **representative prefilter** (cheap summary bounds + lazy chunked
  exact DTW + stacked member refinement) against the PR-1 eager path on
  the headline configuration — result-identical and >= 3x faster;
- the **band-limited batch kernel** against the full anti-diagonal
  kernel on banded workloads — bit-identical and faster once the band
  excludes cells;
- **``query_batch`` throughput** against sequential single-query
  submission over the real HTTP server at 8 concurrent queries on the
  interactive configuration — identical answers, >= 2x throughput (one
  request pays the envelope/lock/dispatch once and the engine's planner
  stacks the batch's kernel work).

As in E5, wall-clock factor floors are asserted locally and soft-gated
on shared CI runners (``ONEX_BENCH_SOFT=1``), where the result-identity
checks remain the hard gate.
"""

import os
import time

import numpy as np

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection
from repro.distances.dtw import _dtw_batch_banded, _dtw_batch_full, effective_band
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService
from run_all import _post

SOFT = os.environ.get("ONEX_BENCH_SOFT") == "1"


def make_base(states: int, years: int) -> OnexBase:
    dataset = build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[:states],
        years=years,
        min_years=max(10, years - 6),
        seed=5,
    )
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8)
    )
    base.build()
    return base


def test_rep_prefilter_speedup(benchmark):
    """Two-layer cascade vs the PR-1 eager representative scan (exact)."""
    base = make_base(50, 40)
    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(3)]
    cascade = QueryProcessor(base, QueryConfig(mode="exact"))
    eager = QueryProcessor(base, QueryConfig(mode="exact", use_rep_prefilter=False))

    def timed(processor):
        start = time.perf_counter()
        matches = [processor.best_match(q, normalize=False) for q in queries]
        return time.perf_counter() - start, matches

    def measure():
        t_new, m_new = timed(cascade)
        t_old, m_old = timed(eager)
        return t_new, t_old, m_new, m_old

    t_new, t_old, m_new, m_old = benchmark.pedantic(measure, rounds=3, iterations=1)
    for got, want in zip(m_new, m_old):
        assert got.ref == want.ref, "prefilter changed the exact best match"
        assert abs(got.distance - want.distance) < 1e-9
    speedup = t_old / t_new
    benchmark.extra_info["cascade_seconds"] = round(t_new, 4)
    benchmark.extra_info["eager_seconds"] = round(t_old, 4)
    benchmark.extra_info["speedup_vs_pr1"] = round(speedup, 2)
    benchmark.extra_info["rep_dtw_skipped"] = cascade.last_stats.rep_dtw_skipped
    if not SOFT:
        assert speedup >= 3.0, f"prefilter cascade only {speedup:.1f}x vs PR-1 path"


def test_banded_kernel_speed(benchmark):
    """Band-limited kernel vs the full kernel at a 10% warping window."""
    rng = np.random.default_rng(7)
    n = 128
    query = rng.normal(size=n).cumsum()
    rows = rng.normal(size=(64, n)).cumsum(axis=1)
    band = effective_band(n, n, max(1, n // 10))

    def measure():
        start = time.perf_counter()
        banded = _dtw_batch_banded(query, rows, band, False, True)
        t_banded = time.perf_counter() - start
        start = time.perf_counter()
        full = _dtw_batch_full(query, rows, band, False, True)
        t_full = time.perf_counter() - start
        return t_banded, t_full, banded, full

    t_banded, t_full, banded, full = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert np.array_equal(banded[0], full[0]), "banded kernel diverged"
    assert np.array_equal(banded[1], full[1]), "banded path lengths diverged"
    benchmark.extra_info["banded_seconds"] = round(t_banded, 4)
    benchmark.extra_info["full_seconds"] = round(t_full, 4)
    benchmark.extra_info["banded_speedup"] = round(t_full / t_banded, 2)
    if not SOFT:
        assert t_banded < t_full, "banded kernel slower than full on banded work"


def test_query_batch_throughput(benchmark):
    """``query_batch`` vs sequential submission, end to end over HTTP."""
    rng = np.random.default_rng(55)
    queries = [[float(v) for v in rng.uniform(size=6)] for _ in range(8)]
    service = OnexService(QueryConfig(mode="exact"))
    with OnexHttpServer(service) as server:
        loaded = _post(
            server.url,
            {
                "op": "load_dataset",
                "params": {
                    "source": "matters",
                    "seed": 5,
                    "years": 16,
                    "min_years": 10,
                    "indicators": ["GrowthRate"],
                    "similarity_threshold": 0.2,
                    "min_length": 5,
                    "max_length": 8,
                },
            },
        )
        assert loaded["ok"], loaded
        name = loaded["result"]["dataset"]
        # Warm both paths (first-touch builds member matrices/summaries).
        _post(
            server.url,
            {"op": "query_batch", "params": {"dataset": name, "queries": queries}},
        )
        rounds: list[tuple[float, float]] = []

        def measure():
            start = time.perf_counter()
            singles = [
                _post(
                    server.url,
                    {"op": "best_match", "params": {"dataset": name, "query": q}},
                )
                for q in queries
            ]
            t_seq = time.perf_counter() - start
            start = time.perf_counter()
            batch = _post(
                server.url,
                {"op": "query_batch", "params": {"dataset": name, "queries": queries}},
            )
            rounds.append((t_seq, time.perf_counter() - start))
            return singles, batch

        singles, batch = benchmark.pedantic(measure, rounds=5, iterations=1)
    assert batch["ok"], batch
    for single, entry in zip(singles, batch["result"]["results"]):
        best = entry["matches"][0]
        assert best["match_series"] == single["result"]["match_series"]
        assert best["match_start"] == single["result"]["match_start"]
        assert abs(best["distance"] - single["result"]["distance"]) < 1e-9
    # Wall-clock per round is noisy (HTTP + thread spawn per request);
    # gate on the best round of each side, as `_timed` does elsewhere.
    t_seq = min(t for t, _ in rounds)
    t_batch = min(t for _, t in rounds)
    ratio = t_seq / t_batch
    benchmark.extra_info["sequential_seconds"] = round(t_seq, 4)
    benchmark.extra_info["batch_seconds"] = round(t_batch, 4)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 2)
    if not SOFT:
        assert ratio >= 2.0, f"query_batch only {ratio:.2f}x sequential submission"
