"""E15: streaming ingestion and live pattern monitoring (repro.stream).

Characterises the live subsystem on the electricity stream: sustained
per-append cost of incremental window indexing against the alternative
the seed code implied (rebuild the base per arrival), the added latency
of a standing monitor, and exactness — SPRING events identical to a
brute-force replay, and post-stream query answers identical to a
from-scratch rebuild.
"""

import itertools
import os
import time

import numpy as np
import pytest

from repro.baselines.spring import SpringMatcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.timeseries import TimeSeries
from repro.stream import StreamIngestor

#: Build shape shared by the streaming measurements.
BUILD = dict(similarity_threshold=0.08, min_length=12, max_length=16)


def make_base(electricity, households=2) -> OnexBase:
    arrays = [
        electricity[f"household-{h}"].values[:250] for h in range(households)
    ]
    dataset = TimeSeriesDataset.from_arrays(
        arrays, names=[f"household-{h}" for h in range(households)], name="stream-e15"
    )
    base = OnexBase(dataset, BuildConfig(**BUILD))
    base.build()
    return base


@pytest.fixture(scope="module")
def stream_values(electricity):
    return electricity["household-0"].values[250:365].astype(float)


def test_incremental_append_vs_rebuild(benchmark, electricity, stream_values):
    """Sustained per-append cost vs rebuilding the base per arrival."""
    base = make_base(electricity)
    ingestor = StreamIngestor(base)
    values = itertools.cycle(stream_values)

    def one_append():
        ingestor.append_points("live", [float(next(values))])

    benchmark(one_append)
    per_append = benchmark.stats["mean"]

    # The alternative: re-run the offline build on every arrival.
    rebuild_base = make_base(electricity)
    started = time.perf_counter()
    rebuild_base.build()
    rebuild_seconds = time.perf_counter() - started

    ratio = rebuild_seconds / per_append
    benchmark.extra_info["per_append_ms"] = round(per_append * 1e3, 4)
    benchmark.extra_info["rebuild_ms"] = round(rebuild_seconds * 1e3, 2)
    benchmark.extra_info["incremental_vs_rebuild"] = round(ratio, 1)
    # Wall-clock ratios are noisy on shared CI runners; there the
    # exactness gates below are authoritative and the factor is only
    # reported (ONEX_BENCH_SOFT=1).  Locally the 5x floor is asserted.
    if os.environ.get("ONEX_BENCH_SOFT") != "1":
        assert ratio >= 5.0, (
            f"per-append cost only {ratio:.1f}x cheaper than rebuild-per-append"
        )


def test_append_preserves_query_results(electricity, stream_values):
    """After streaming, exact answers equal a from-scratch rebuild's."""
    base = make_base(electricity)
    ingestor = StreamIngestor(base)
    chunk = 16
    for i in range(0, len(stream_values), chunk):
        ingestor.append_points("live", stream_values[i : i + chunk])
    base.validate()

    rebuilt_dataset = TimeSeriesDataset(name="stream-e15-rebuilt")
    for series in base.raw_dataset:
        rebuilt_dataset.add(TimeSeries(series.name, series.values))
    rebuilt = OnexBase(rebuilt_dataset, BuildConfig(**BUILD))
    rebuilt.build()
    assert base.stats.subsequences == rebuilt.stats.subsequences

    streamed_qp = QueryProcessor(base, QueryConfig(mode="exact"))
    rebuilt_qp = QueryProcessor(rebuilt, QueryConfig(mode="exact"))
    rng = np.random.default_rng(15)
    for _ in range(5):
        q = rng.uniform(size=14)
        a = streamed_qp.best_match(q, normalize=False)
        b = rebuilt_qp.best_match(q, normalize=False)
        assert a.ref == b.ref, "streamed base diverged from rebuild"
        assert abs(a.distance - b.distance) < 1e-9


def test_monitor_latency_and_exactness(benchmark, electricity, stream_values):
    """Per-append latency with a standing monitor; events exact vs SPRING."""
    base = make_base(electricity)
    ingestor = StreamIngestor(base)
    norm = base.dataset["household-0"].values
    pattern = norm[50:64]
    epsilon = float(len(pattern) * 0.06)
    monitor = ingestor.registry.register(pattern, epsilon, series="live")

    def run():
        events = []
        for v in stream_values:
            events += ingestor.append_points("live", [float(v)])["events"]
        return events

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["appends"] = len(stream_values)
    benchmark.extra_info["events"] = len(events)
    benchmark.extra_info["windows_pruned_by_prefilter"] = monitor.windows_pruned
    benchmark.extra_info["windows_checked"] = monitor.windows_checked

    # Exactness: SPRING events identical to a brute-force replay of the
    # normalised stream through the reference matcher.
    reference = SpringMatcher(pattern, epsilon)
    want = reference.extend(base.dataset["live"].values)
    got = [e for e in events if e["kind"] == "match"]
    assert [(e["start"], e["end"]) for e in got] == [
        (w.start, w.end) for w in want
    ], "monitor SPRING events diverged from brute force"
    for e, w in zip(got, want):
        assert abs(e["distance"] - w.distance) < 1e-9
