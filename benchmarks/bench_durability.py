"""E21: durability — WAL ingest overhead, recovery time, compaction.

Four claims from the durability layer (DESIGN.md §8), measured end to
end against :class:`OnexService`:

1. **WAL ingest overhead.**  A representative chunked append stream
   (16 points per call, 8–12-point windows) runs through a durable
   service (WAL in the default ``interval`` sync mode, checkpoints
   parked out of the loop) with the inner dispatch instrumented, so the
   wrapper cost — dedup lookup, WAL log-before-ack, outcome recording —
   is measured directly rather than as the difference of two noisy
   end-to-end runs; a plain service provides the reference per-append
   time.  The wrapper must stay under 15% of the execution cost — the
   PR's acceptance gate.
2. **Recovery time scales with log length.**  Seed WALs of increasing
   length, reopen the data dir, and time :meth:`OnexService.recover`;
   the report carries seconds and per-record cost for each size.
3. **Checkpoints compact the log.**  With a live checkpoint cadence the
   WAL is rewritten down to the tail behind the previous retained
   checkpoint, so its size and the records replayed at recovery are
   bounded by the cadence, not the stream length.
4. **Recovery identity.**  Abandon a durable service mid-stream (the
   in-process stand-in for ``kill -9`` — the WAL is flushed before every
   ack, never on close), recover into a fresh service, and require the
   structure fingerprint, query results, and a pre-crash ``request_id``
   retry (dedup, not double-append) to come back identical.  Hard gate.

Run directly (``python benchmarks/bench_durability.py``) for one JSON
document, or through ``run_all.py`` which embeds the same sections in
``BENCH_pr8.json``; the ``test_*`` wrappers give CI a cheap smoke.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.durability import DurabilityManager, dataset_slug
from repro.server.protocol import Request
from repro.server.service import OnexService

LOAD_PARAMS = {
    "source": "electricity",
    "households": 1,
    "similarity_threshold": 0.1,
    "min_length": 4,
    "max_length": 4,
}
DATASET = "ElectricityLoad-sim"
QUERY = {"dataset": DATASET, "query": [0.1, 0.3, 0.2, 0.4], "k": 3}
NO_CHECKPOINTS = 10**9  # cadence far past any bench stream

#: The ingest-overhead section indexes real window lengths (8-12) so the
#: engine does representative per-append work; the recovery sections use
#: the minimal 4-point configuration (:data:`LOAD_PARAMS`) because they
#: measure WAL mechanics, not engine throughput.
INGEST_LOAD_PARAMS = {**LOAD_PARAMS, "min_length": 8, "max_length": 12}


def _call(service: OnexService, op: str, params: dict, request_id=None):
    response = service.handle(Request(op, dict(params), request_id=request_id))
    assert response.ok, (op, response.error_type, response.error_message)
    return response.result


def _chunks(count: int, size: int, seed: int = 7) -> list[list[float]]:
    rng = np.random.default_rng(seed)
    return [
        [float(v) for v in rng.normal(size=size).cumsum()] for _ in range(count)
    ]


def _wal_bytes(data_dir: Path) -> int:
    return (Path(data_dir) / dataset_slug(DATASET) / "wal.log").stat().st_size


def _append_all(service: OnexService, chunks: list[list[float]]) -> float:
    started = time.perf_counter()
    for chunk in chunks:
        _call(
            service,
            "append_points",
            {"dataset": DATASET, "series": "live", "values": chunk},
        )
    return time.perf_counter() - started


def run_wal_overhead(
    appends: int = 240, chunk: int = 16, repeats: int = 3
) -> dict:
    """Per-append WAL wrapper cost on a representative ingest stream.

    The durable run instruments :meth:`OnexService._execute`, so the
    wrapper cost (lookup + WAL append + record + cadence check) and the
    execution cost come from the *same* appends — engine wall-clock
    noise, which dwarfs the wrapper, cancels instead of masquerading as
    overhead.  Best-of-``repeats`` on both sides; the plain service is
    the sanity reference that the instrumented execution time is the
    real no-WAL cost.
    """
    chunks = _chunks(appends, chunk)
    best_plain = float("inf")
    best = None
    wal_bytes = 0
    for _ in range(repeats):
        plain = OnexService()
        _call(plain, "load_dataset", INGEST_LOAD_PARAMS)
        best_plain = min(best_plain, _append_all(plain, chunks))

        tmp = Path(tempfile.mkdtemp(prefix="onex-bench-wal-"))
        try:
            manager = DurabilityManager(
                tmp, wal_sync="interval", checkpoint_every=NO_CHECKPOINTS
            )
            durable = OnexService(durability=manager)
            _call(durable, "load_dataset", INGEST_LOAD_PARAMS)
            executing = [0.0]
            inner = durable._execute

            def timed_execute(request, _inner=inner, _acc=executing):
                started = time.perf_counter()
                response = _inner(request)
                _acc[0] += time.perf_counter() - started
                return response

            durable._execute = timed_execute
            total = _append_all(durable, chunks)
            wrapper = total - executing[0]
            overhead = 100.0 * wrapper / executing[0]
            if best is None or overhead < best["overhead"]:
                best = {
                    "total": total,
                    "exec": executing[0],
                    "wrapper": wrapper,
                    "overhead": overhead,
                }
            wal_bytes = _wal_bytes(tmp)
            durable.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return {
        "appends": appends,
        "chunk": chunk,
        "wal_sync": "interval",
        "plain_ms_per_append": round(best_plain / appends * 1e3, 4),
        "durable_ms_per_append": round(best["total"] / appends * 1e3, 4),
        "execute_ms_per_append": round(best["exec"] / appends * 1e3, 4),
        "wal_wrapper_ms_per_append": round(
            best["wrapper"] / appends * 1e3, 4
        ),
        "wal_bytes": wal_bytes,
        "wal_bytes_per_append": round(wal_bytes / appends, 1),
        "overhead_pct": round(best["overhead"], 2),
        "overhead_under_15pct": best["overhead"] < 15.0,
    }


def run_recovery_time(sizes: tuple[int, ...] = (40, 160, 640)) -> dict:
    """Recovery wall-clock vs WAL length (no checkpoints: full replay)."""
    points = []
    for size in sizes:
        tmp = Path(tempfile.mkdtemp(prefix="onex-bench-recover-"))
        try:
            manager = DurabilityManager(
                tmp, wal_sync="interval", checkpoint_every=NO_CHECKPOINTS
            )
            service = OnexService(durability=manager)
            _call(service, "load_dataset", LOAD_PARAMS)
            _append_all(service, _chunks(size, 4))
            service.close()

            revived = OnexService(
                durability=DurabilityManager(
                    tmp, wal_sync="interval", checkpoint_every=NO_CHECKPOINTS
                )
            )
            started = time.perf_counter()
            report = revived.recover()
            seconds = time.perf_counter() - started
            assert report.errors == [], report.errors
            points.append(
                {
                    "wal_records": size,
                    "replayed": report.replayed_records,
                    "wal_bytes": _wal_bytes(tmp),
                    "seconds": round(seconds, 4),
                    "ms_per_record": round(seconds / size * 1e3, 4),
                }
            )
            revived.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return {
        "sizes": list(sizes),
        "points": points,
        "full_replay": all(p["replayed"] == p["wal_records"] for p in points),
    }


def run_checkpoint_compaction(
    appends: int = 120, checkpoint_every: int = 30
) -> dict:
    """WAL growth and recovery replay with a live checkpoint cadence.

    The comparison run (no checkpoints) retains every record; the
    checkpointed run must compact down to at most two cadence intervals
    (compaction keeps the tail behind the *previous* retained
    checkpoint, which backstops post-restart idempotency) and replay
    only the records past the newest checkpoint at recovery.
    """
    chunks = _chunks(appends, 4)
    sizes = {}
    for label, cadence in (
        ("unbounded", NO_CHECKPOINTS),
        ("checkpointed", checkpoint_every),
    ):
        tmp = Path(tempfile.mkdtemp(prefix="onex-bench-compact-"))
        try:
            manager = DurabilityManager(
                tmp, wal_sync="interval", checkpoint_every=cadence
            )
            service = OnexService(durability=manager)
            _call(service, "load_dataset", LOAD_PARAMS)
            _append_all(service, chunks)
            records = sum(1 for _ in manager.get(DATASET).wal.records())
            service.close()

            revived = OnexService(
                durability=DurabilityManager(
                    tmp, wal_sync="interval", checkpoint_every=cadence
                )
            )
            report = revived.recover()
            assert report.errors == [], report.errors
            sizes[label] = {
                "wal_bytes": _wal_bytes(tmp),
                "wal_records": records,
                "replayed_at_recovery": report.replayed_records,
            }
            revived.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    compacted = sizes["checkpointed"]
    return {
        "appends": appends,
        "checkpoint_every": checkpoint_every,
        **sizes,
        "compaction_ratio": round(
            sizes["unbounded"]["wal_bytes"] / compacted["wal_bytes"], 2
        ),
        "wal_bounded_by_cadence": (
            compacted["wal_records"] <= 2 * checkpoint_every
        ),
        "replay_bounded_by_cadence": (
            compacted["replayed_at_recovery"] <= checkpoint_every
        ),
    }


def run_recovery_identity(
    appends: int = 60, checkpoint_every: int = 25
) -> dict:
    """Abandon mid-stream, recover, require identical served state."""
    monitor = {
        "dataset": DATASET,
        "pattern": [0.1, 0.5, 0.2, 0.6],
        "epsilon": 50.0,
        "series": "live",
        "monitor": "m1",
    }
    chunks = _chunks(appends, 4, seed=29)
    tmp = Path(tempfile.mkdtemp(prefix="onex-bench-identity-"))
    try:
        manager = DurabilityManager(
            tmp, wal_sync="interval", checkpoint_every=checkpoint_every
        )
        service = OnexService(durability=manager)
        _call(service, "load_dataset", LOAD_PARAMS)
        _call(service, "register_monitor", monitor, request_id="bench-mon")
        for i, chunk in enumerate(chunks):
            _call(
                service,
                "append_points",
                {"dataset": DATASET, "series": "live", "values": chunk},
                request_id=f"bench-{i}",
            )
        want_fingerprint = _call(service, "describe", {"dataset": DATASET})[
            "structure_fingerprint"
        ]
        want_matches = _call(service, "k_best", QUERY)["matches"]
        want_last_seq = _call(service, "poll_events", {"dataset": DATASET})[
            "last_seq"
        ]
        # The crash: no close(), no flush — the WAL was synced per ack.
        del service, manager

        revived = OnexService(
            durability=DurabilityManager(
                tmp, wal_sync="interval", checkpoint_every=checkpoint_every
            )
        )
        started = time.perf_counter()
        report = revived.recover()
        seconds = time.perf_counter() - started
        assert report.errors == [], report.errors

        fingerprint_identical = (
            _call(revived, "describe", {"dataset": DATASET})[
                "structure_fingerprint"
            ]
            == want_fingerprint
        )
        matches_identical = (
            _call(revived, "k_best", QUERY)["matches"] == want_matches
        )
        revived_last_seq = _call(
            revived, "poll_events", {"dataset": DATASET}
        )["last_seq"]
        length_before = len(
            _call(
                revived, "query_preview", {"dataset": DATASET, "series": "live"}
            )["values"]
        )
        _call(
            revived,
            "append_points",
            {"dataset": DATASET, "series": "live", "values": chunks[-1]},
            request_id=f"bench-{appends - 1}",  # a pre-crash id, retried
        )
        length_after = len(
            _call(
                revived, "query_preview", {"dataset": DATASET, "series": "live"}
            )["values"]
        )
        dedup_across_restart = length_after == length_before
        # The revived feed continues strictly forward.  (A partial SPRING
        # match in flight at the checkpoint boundary is not part of the
        # checkpointed monitor state, so the regenerated history may be
        # one event short of the pre-crash feed — the contract is forward
        # monotonicity, not seq-for-seq event-history equality.)
        fresh = _call(
            revived,
            "append_points",
            {"dataset": DATASET, "series": "live", "values": [9.0, 1.0, 8.0, 2.0]},
        )["events"]
        seq_monotonic = bool(fresh) and (
            min(e["seq"] for e in fresh) > revived_last_seq
        )
        revived.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    identical = (
        fingerprint_identical
        and matches_identical
        and seq_monotonic
        and dedup_across_restart
    )
    return {
        "appends": appends,
        "checkpoint_every": checkpoint_every,
        "recovery_seconds": round(seconds, 4),
        "replayed": report.replayed_records,
        "pre_crash_last_seq": want_last_seq,
        "revived_last_seq": revived_last_seq,
        "fingerprint_identical": fingerprint_identical,
        "matches_identical": matches_identical,
        "event_seq_monotonic": seq_monotonic,
        "request_id_dedup_across_restart": dedup_across_restart,
        "identical": identical,
    }


def run_durability(
    appends: int = 240, sizes: tuple[int, ...] = (40, 160, 640)
) -> dict:
    """All four E21 sections as one report (``run_all.py`` entry point)."""
    return {
        "wal_overhead": run_wal_overhead(appends=appends),
        "recovery_time": run_recovery_time(sizes=sizes),
        "compaction": run_checkpoint_compaction(appends=max(appends // 2, 60)),
        "recovery_identity": run_recovery_identity(),
    }


def test_wal_overhead_smoke():
    report = run_wal_overhead(appends=120, repeats=2)
    assert report["wal_bytes"] > 0
    assert report["overhead_under_15pct"], report


def test_recovery_time_smoke():
    report = run_recovery_time(sizes=(24,))
    assert report["full_replay"]
    assert report["points"][0]["seconds"] >= 0


def test_checkpoint_compaction_smoke():
    report = run_checkpoint_compaction(appends=40, checkpoint_every=10)
    assert report["wal_bounded_by_cadence"], report
    assert report["replay_bounded_by_cadence"], report
    assert report["compaction_ratio"] > 1.0


def test_recovery_identity_smoke():
    report = run_recovery_identity(appends=24, checkpoint_every=10)
    assert report["identical"], report


if __name__ == "__main__":
    print(json.dumps(run_durability(), indent=2))
