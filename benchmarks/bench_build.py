"""E18: the sharded, vectorised base-construction pipeline vs the seed build.

The offline construction was the last serial layer: the seed extracted
windows one Python loop iteration at a time, clustered with row-at-a-time
join bookkeeping, and repaired drafts one by one.  PR 5 rebuilt it as a
per-length shard pipeline (strided extraction, batched scan joins with
prescreened distance evaluation, one flat masked repair evaluation per
round) fanned over a process or thread pool — **result-identical** at
every setting, which is the hard gate here: each timed variant must
produce the same :meth:`OnexBase.structure_fingerprint` as a replica of
the seed's build loop.

The headline measurement uses the 50-states x 40-years collection at a
tight accuracy threshold (ST = 0.05, the middle of the E17 analytics
grid) over lengths 5..24 — the preprocessing regime the paper's
"huge number of subsequences" challenge describes, where the seed build
collapses.  Factor floors (vectorised single-worker >= 1.5x, the 4-worker
build on its best backend >= 2x; the PR-5 target is 3x, which this box
reaches on good runs and multi-core hardware reaches with margin — a
single-core container only sees the vectorisation share of the sharding)
are asserted locally and soft-gated on shared CI runners
(``ONEX_BENCH_SOFT=1``), where the fingerprint identity remains the hard
gate.
"""

import os
import time

import numpy as np

from repro.core.base import LengthBucket, OnexBase
from repro.core.config import BuildConfig
from repro.core.grouping import cluster_subsequences
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection

SOFT = os.environ.get("ONEX_BENCH_SOFT") == "1"

#: The E18 headline build configuration (see module docstring).
HEADLINE = dict(similarity_threshold=0.05, min_length=5, max_length=24)


def headline_dataset(states=50, years=40):
    return build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[:states],
        years=years,
        min_years=max(10, years - 6),
        seed=5,
    )


def seed_build(base: OnexBase) -> None:
    """Replica of the seed's serial build loop, on the same invariants.

    Scalar per-window extraction, the retained reference clustering path
    (``batched=False`` — the row-at-a-time scan and per-draft repair),
    and the ref-keyed dict assembly; this is the "current serial"
    baseline the PR-5 acceptance factors are measured against.
    """
    cfg = base.config
    dataset = base.dataset
    base._buckets = {}
    for length in range(cfg.min_length, cfg.max_length + 1):
        refs = list(dataset.iter_subsequences(length, step=cfg.step))
        if not refs:
            continue
        matrix = np.empty((len(refs), length), dtype=np.float64)
        for k, ref in enumerate(refs):
            matrix[k] = dataset.values(ref)
        groups = cluster_subsequences(matrix, refs, cfg.group_radius, batched=False)
        row_of = {ref: k for k, ref in enumerate(refs)}
        member_rows = [row_of[m] for g in groups for m in g.members]
        base._buckets[length] = LengthBucket(length, groups, matrix[member_rows])


def build_with(dataset, **overrides) -> OnexBase:
    base = OnexBase(dataset, BuildConfig(**{**HEADLINE, **overrides}))
    base.build()
    return base


def test_build_pipeline_speedup(benchmark):
    """Vectorised + sharded build vs the seed loop, fingerprint-gated."""
    dataset = headline_dataset()
    seed_base = OnexBase(dataset, BuildConfig(**HEADLINE))

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    one = build_with(dataset)
    proc = build_with(dataset, num_workers=4)
    thr = build_with(dataset, num_workers=4, build_executor="thread")

    def measure():
        # Interleaved best-of-3: each round times every variant back to
        # back, so frequency scaling / cache state drift hits them all
        # alike and the minima are comparable.
        times = {"seed": [], "one": [], "proc": [], "thr": []}
        for _ in range(3):
            times["seed"].append(timed(lambda: seed_build(seed_base)))
            times["one"].append(timed(one.build))
            times["proc"].append(timed(proc.build))
            times["thr"].append(timed(thr.build))
        return {k: min(v) for k, v in times.items()}

    best = benchmark.pedantic(measure, rounds=1, iterations=1)
    t_seed, t_one, t_proc, t_thr = (
        best["seed"], best["one"], best["proc"], best["thr"]
    )
    # Hard gate: every execution strategy builds the identical base.
    want = one.structure_fingerprint()
    assert proc.structure_fingerprint() == want
    assert thr.structure_fingerprint() == want
    assert seed_base.structure_fingerprint() == want

    ratio_one = t_seed / t_one
    ratio_par = t_seed / min(t_proc, t_thr)
    benchmark.extra_info["seed_seconds"] = round(t_seed, 4)
    benchmark.extra_info["vectorised_1w_seconds"] = round(t_one, 4)
    benchmark.extra_info["parallel_4w_process_seconds"] = round(t_proc, 4)
    benchmark.extra_info["parallel_4w_thread_seconds"] = round(t_thr, 4)
    benchmark.extra_info["speedup_vectorised_1w"] = round(ratio_one, 2)
    benchmark.extra_info["speedup_parallel_4w_best"] = round(ratio_par, 2)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    if not SOFT:
        assert ratio_one >= 1.5
        assert ratio_par >= 2.0


def test_parallel_matches_serial_across_configs(benchmark):
    """Fingerprint equality on step>1 / loose-ST variants too."""
    dataset = headline_dataset(states=12, years=16)

    def check():
        pairs = []
        for overrides in (
            dict(similarity_threshold=0.2, max_length=10),
            dict(step=2),
            dict(similarity_threshold=0.3, min_length=6, max_length=9, step=3),
        ):
            serial = build_with(dataset, **overrides)
            parallel = build_with(dataset, num_workers=4, **overrides)
            pairs.append(
                (serial.structure_fingerprint(), parallel.structure_fingerprint())
            )
        return pairs

    pairs = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(a == b for a, b in pairs)


def test_extraction_kernel_speed(benchmark):
    """Strided `subsequence_matrix` vs the seed per-window copy loop."""
    dataset = headline_dataset().normalized()
    lengths = range(HEADLINE["min_length"], HEADLINE["max_length"] + 1)

    def scalar():
        for length in lengths:
            refs = list(dataset.iter_subsequences(length))
            matrix = np.empty((len(refs), length), dtype=np.float64)
            for k, ref in enumerate(refs):
                matrix[k] = dataset.values(ref)

    def strided():
        for length in lengths:
            dataset.subsequence_matrix(length)

    def measure():
        start = time.perf_counter()
        scalar()
        t_scalar = time.perf_counter() - start
        start = time.perf_counter()
        strided()
        return t_scalar, time.perf_counter() - start

    t_scalar, t_strided = benchmark.pedantic(measure, rounds=2, iterations=1)
    benchmark.extra_info["scalar_seconds"] = round(t_scalar, 4)
    benchmark.extra_info["strided_seconds"] = round(t_strided, 4)
    benchmark.extra_info["speedup"] = round(t_scalar / t_strided, 2)
    if not SOFT:
        assert t_scalar / t_strided >= 1.2
