"""Shared fixtures for the experiment benchmarks (DESIGN.md §4).

Each ``bench_*.py`` file regenerates one paper artifact (figure or
headline claim).  Fixtures here build the datasets and bases once per
session so the measured callables isolate the phase under test.  Run::

    pytest benchmarks/ --benchmark-only

Numbers land in the pytest-benchmark table; experiment-level findings
(who wins, by what factor) are attached as ``extra_info`` and printed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.dataset import TimeSeriesDataset
from repro.data.electricity import build_electricity_collection
from repro.data.matters import build_matters_collection
from repro.data.synthetic import noisy_sine, warped_copy
from repro.data.timeseries import TimeSeries

#: Build parameters shared by the query-phase experiments.
MATTERS_BUILD = dict(similarity_threshold=0.1, min_length=5, max_length=8)


@pytest.fixture(scope="session")
def matters_growth() -> TimeSeriesDataset:
    """The demo's "MATTERS GrowthRate" dataset (50 states, 10-16 years)."""
    return build_matters_collection(
        indicators=("GrowthRate",), years=16, min_years=10, seed=2013
    )


@pytest.fixture(scope="session")
def matters_base(matters_growth) -> OnexBase:
    base = OnexBase(matters_growth, BuildConfig(**MATTERS_BUILD))
    base.build()
    return base


@pytest.fixture(scope="session")
def matters_fast_processor(matters_base) -> QueryProcessor:
    return QueryProcessor(matters_base, QueryConfig(mode="fast", refine_groups=1))


@pytest.fixture(scope="session")
def matters_exact_processor(matters_base) -> QueryProcessor:
    return QueryProcessor(matters_base, QueryConfig(mode="exact"))


@pytest.fixture(scope="session")
def electricity() -> TimeSeriesDataset:
    return build_electricity_collection(households=2, seed=417)


def make_warped_workload(
    *, series: int, length: int, queries: int, seed: int
) -> tuple[TimeSeriesDataset, list[np.ndarray]]:
    """Misaligned sine collection plus warped query sequences.

    This is the regime the paper's accuracy claim concerns: queries are
    time-warped variants of stored shapes, so pointwise/z-normalised
    fixed-length methods systematically mis-rank candidates while DTW in
    value space does not.
    """
    rng = np.random.default_rng(seed)
    arrays = [
        noisy_sine(
            length,
            period=float(rng.uniform(12.0, 30.0)),
            amplitude=float(rng.uniform(0.5, 1.5)),
            phase=float(rng.uniform(0.0, 6.28)),
            noise=0.05,
            seed=rng,
        )
        for _ in range(series)
    ]
    dataset = TimeSeriesDataset(
        [TimeSeries(f"sine-{k}", a) for k, a in enumerate(arrays)],
        name=f"warped-{series}",
    )
    lo, hi = dataset.global_bounds()
    query_list = []
    for _ in range(queries):
        src = arrays[int(rng.integers(series))]
        qlen = int(rng.integers(10, 15))
        start = int(rng.integers(0, length - qlen + 1))
        window = src[start : start + qlen]
        query_list.append(warped_copy(window, max_stretch=2, noise=0.02, seed=rng))
    return dataset, query_list
