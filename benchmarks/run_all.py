"""Machine-readable performance snapshot for the perf trajectory.

``python benchmarks/run_all.py --quick`` runs a small, deterministic
subset of the E1/E5/E15 measurements directly (no pytest) and prints one
JSON document: base-construction time, per-query latency of the batched
and legacy member-refinement paths, the UCR Suite baseline, the
cross-check that both refinement paths return the same best match, and
the streaming subsystem's sustained per-append cost vs rebuild-per-append
with a monitor-exactness gate against brute-force SPRING.  The full
pytest-benchmark suite remains the authoritative record
(``pytest benchmarks/``); this entry point exists so CI and scripts can
track the headline numbers cheaply across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.baselines.spring import SpringMatcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.query import QueryProcessor
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection
from repro.stream import StreamIngestor

QUICK = {"states": 12, "years": 16, "queries": 2, "repeats": 1, "appends": 120}
FULL = {"states": 50, "years": 40, "queries": 3, "repeats": 3, "appends": 600}


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(config: dict) -> dict:
    dataset = build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[: config["states"]],
        years=config["years"],
        min_years=max(10, config["years"] - 6),
        seed=5,
    )
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8)
    )
    build_seconds = _timed(base.build, config["repeats"])

    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(config["queries"])]
    batched = QueryProcessor(base, QueryConfig(mode="exact"))
    legacy = QueryProcessor(
        base, QueryConfig(mode="exact", use_member_batching=False)
    )
    fast = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    ucr = UcrSuiteSearcher(base.dataset)

    results_batched = [batched.best_match(q, normalize=False) for q in queries]
    results_legacy = [legacy.best_match(q, normalize=False) for q in queries]
    identical = all(
        got.ref == want.ref and abs(got.distance - want.distance) < 1e-9
        for got, want in zip(results_batched, results_legacy)
    )

    t_batched = _timed(
        lambda: [batched.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_legacy = _timed(
        lambda: [legacy.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_fast = _timed(
        lambda: [fast.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_ucr = _timed(
        lambda: [ucr.best_match(q) for q in queries], config["repeats"]
    )

    stream_report = run_stream(config)

    return {
        "config": config,
        "stream": stream_report,
        "base": {
            "series": len(dataset),
            "subsequences": base.stats.subsequences,
            "groups": base.stats.groups,
            "compaction_ratio": round(base.stats.compaction_ratio, 2),
            "build_seconds": round(build_seconds, 4),
        },
        "query_seconds": {
            "onex_exact_batched": round(t_batched, 4),
            "onex_exact_legacy": round(t_legacy, 4),
            "onex_fast": round(t_fast, 4),
            "ucr_suite": round(t_ucr, 4),
        },
        "speedups": {
            "batched_vs_legacy": round(t_legacy / t_batched, 2),
            "fast_vs_ucr": round(t_ucr / t_fast, 2),
        },
        "refinement_paths_identical": identical,
    }


def run_stream(config: dict) -> dict:
    """E15 smoke: per-append ingest cost, rebuild ratio, monitor exactness."""
    rng = np.random.default_rng(71)
    arrays = [rng.normal(size=120).cumsum() for _ in range(4)]
    build = dict(similarity_threshold=0.1, min_length=8, max_length=10)

    def fresh_base() -> OnexBase:
        from repro.data.dataset import TimeSeriesDataset

        dataset = TimeSeriesDataset.from_arrays(
            [a.copy() for a in arrays], name="stream-smoke"
        )
        base = OnexBase(dataset, BuildConfig(**build))
        base.build()
        return base

    base = fresh_base()
    rebuild_seconds = _timed(base.build, config["repeats"])

    ingestor = StreamIngestor(base)
    pattern = base.dataset[0].values[10:19]
    epsilon = float(len(pattern) * 0.08)
    ingestor.registry.register(pattern, epsilon, series="live")
    appends = config["appends"]
    # Half noise, half recurrences of a known series, exactly `appends`
    # points regardless of the configured count.
    motif = np.tile(arrays[0], -(-appends // arrays[0].shape[0]))
    stream = np.concatenate(
        [rng.normal(scale=0.1, size=appends // 2), motif]
    )[:appends]

    started = time.perf_counter()
    events = []
    for value in stream:
        events += ingestor.append_points("live", [float(value)])["events"]
    per_append = (time.perf_counter() - started) / appends

    reference = SpringMatcher(pattern, epsilon)
    want = reference.extend(base.dataset["live"].values)
    got = [e for e in events if e["kind"] == "match"]
    events_exact = [(e["start"], e["end"]) for e in got] == [
        (w.start, w.end) for w in want
    ] and all(abs(e["distance"] - w.distance) < 1e-9 for e, w in zip(got, want))

    return {
        "appends": appends,
        "per_append_ms": round(per_append * 1e3, 4),
        "rebuild_ms": round(rebuild_seconds * 1e3, 2),
        "incremental_vs_rebuild": round(rebuild_seconds / per_append, 1),
        "windows_indexed": ingestor.windows_indexed,
        "monitor_events": len(events),
        "events_exact_vs_brute_force_spring": events_exact,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny configuration for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write the JSON here"
    )
    args = parser.parse_args(argv)

    report = run(QUICK if args.quick else FULL)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
    if not report["refinement_paths_identical"]:
        print("ERROR: batched and legacy refinement disagree", file=sys.stderr)
        return 1
    if not report["stream"]["events_exact_vs_brute_force_spring"]:
        print(
            "ERROR: monitor events diverge from brute-force SPRING",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
