"""Machine-readable performance snapshot for the perf trajectory.

``python benchmarks/run_all.py --quick`` runs a small, deterministic
subset of the E1/E5/E15/E16 measurements directly (no pytest) and prints
one JSON document: base-construction time, per-query latency of the
representative-cascade, PR-1 batched, and legacy member-refinement paths,
the UCR Suite baseline, the cross-checks that every refinement path
returns the same best match, the streaming subsystem's sustained
per-append cost vs rebuild-per-append with a monitor-exactness gate
against brute-force SPRING, and the multi-query section — ``query_batch``
throughput against sequential single-query submission over the real HTTP
server.  The representative-cascade and batch-query numbers (the PR-3
acceptance measurements, gated on prefilter/batch exactness) are also
written to ``BENCH_pr3.json``.  The full pytest-benchmark suite remains
the authoritative record (``pytest benchmarks/``); this entry point
exists so CI and scripts can track the headline numbers cheaply across
PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.baselines.spring import SpringMatcher
from repro.baselines.ucr_suite import UcrSuiteSearcher
from repro.core.base import OnexBase
from repro.core.config import BuildConfig, QueryConfig
from repro.core.deadline import Deadline
from repro.core.query import QueryProcessor
from repro.core.seasonal import find_seasonal_patterns
from repro.core.sensitivity import similarity_profile
from repro.core.threshold import recommend_thresholds
from repro.data.matters import STATE_ABBREVIATIONS, build_matters_collection
from repro.data.timeseries import TimeSeries
from repro.exceptions import DeadlineExceeded
from repro.server.http import OnexHttpServer
from repro.server.service import OnexService
from repro.stream import StreamIngestor
from repro.testing import faults

from bench_durability import run_durability
from bench_metrics import run_metrics
from bench_pool import gates as pool_gates
from bench_pool import run_pool
from bench_serving_load import run_serving_load, run_tracing_overhead

QUICK = {"states": 12, "years": 16, "queries": 2, "repeats": 1, "appends": 120,
         "load_clients": 2, "load_requests": 6, "pool_workers": (0, 2),
         "build": {"similarity_threshold": 0.1, "min_length": 5, "max_length": 10}}
FULL = {"states": 50, "years": 40, "queries": 3, "repeats": 3, "appends": 600,
        "load_clients": 4, "load_requests": 25, "pool_workers": (0, 2, 4),
        "build": {"similarity_threshold": 0.05, "min_length": 5, "max_length": 24}}


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(config: dict) -> dict:
    dataset = build_matters_collection(
        indicators=("GrowthRate",),
        states=STATE_ABBREVIATIONS[: config["states"]],
        years=config["years"],
        min_years=max(10, config["years"] - 6),
        seed=5,
    )
    base = OnexBase(
        dataset, BuildConfig(similarity_threshold=0.2, min_length=5, max_length=8)
    )
    build_seconds = _timed(base.build, config["repeats"])

    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(config["queries"])]
    cascade = QueryProcessor(base, QueryConfig(mode="exact"))
    pr1 = QueryProcessor(base, QueryConfig(mode="exact", use_rep_prefilter=False))
    legacy = QueryProcessor(
        base,
        QueryConfig(mode="exact", use_rep_prefilter=False, use_member_batching=False),
    )
    fast = QueryProcessor(base, QueryConfig(mode="fast", refine_groups=1))
    ucr = UcrSuiteSearcher(base.dataset)

    results_cascade = [cascade.best_match(q, normalize=False) for q in queries]
    results_pr1 = [pr1.best_match(q, normalize=False) for q in queries]
    results_legacy = [legacy.best_match(q, normalize=False) for q in queries]

    def same(got, want):
        return all(
            a.ref == b.ref and abs(a.distance - b.distance) < 1e-9
            for a, b in zip(got, want)
        )

    identical = same(results_pr1, results_legacy) and same(
        results_cascade, results_legacy
    )
    prefilter_identical = same(results_cascade, results_pr1)

    t_cascade = _timed(
        lambda: [cascade.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_pr1 = _timed(
        lambda: [pr1.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_legacy = _timed(
        lambda: [legacy.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_fast = _timed(
        lambda: [fast.best_match(q, normalize=False) for q in queries],
        config["repeats"],
    )
    t_ucr = _timed(
        lambda: [ucr.best_match(q) for q in queries], config["repeats"]
    )
    cascade.best_match(queries[0], normalize=False)
    rep_stats = cascade.last_stats

    stream_report = run_stream(config)
    batch_report = run_batch_queries(config)
    analytics_report = run_analytics(config, dataset, base)
    build_report = run_build(config, dataset)
    resilience_report = run_resilience(config, base)
    serving_report = run_serving_load(
        clients=config["load_clients"],
        requests_per_client=config["load_requests"],
    )
    tracing_report = run_tracing_overhead(
        repeats=config["repeats"], queries=config["queries"] * 2
    )
    durability_report = run_durability(
        appends=config["appends"],
        sizes=(config["appends"] // 3, config["appends"]),
    )
    metrics_report = run_metrics(
        {
            "series": max(4, config["states"] // 2),
            "length": 10 * config["years"] // 4,
            "queries": config["queries"],
            "repeats": config["repeats"],
        }
    )
    pool_report = run_pool(
        worker_counts=tuple(config["pool_workers"]),
        clients=config["load_clients"],
        requests_per_client=config["load_requests"],
    )

    return {
        "config": config,
        "pool": pool_report,
        "metrics": metrics_report,
        "durability": durability_report,
        "observability": {
            "serving_load": serving_report,
            "tracing_overhead": tracing_report,
        },
        "resilience": resilience_report,
        "build_pipeline": build_report,
        "analytics": analytics_report,
        "stream": stream_report,
        "base": {
            "series": len(dataset),
            "subsequences": base.stats.subsequences,
            "groups": base.stats.groups,
            "compaction_ratio": round(base.stats.compaction_ratio, 2),
            "build_seconds": round(build_seconds, 4),
        },
        "query_seconds": {
            "onex_exact_cascade": round(t_cascade, 4),
            "onex_exact_pr1_batched": round(t_pr1, 4),
            "onex_exact_legacy": round(t_legacy, 4),
            "onex_fast": round(t_fast, 4),
            "ucr_suite": round(t_ucr, 4),
        },
        "speedups": {
            "rep_cascade_vs_pr1": round(t_pr1 / t_cascade, 2),
            "batched_vs_legacy": round(t_legacy / t_pr1, 2),
            "cascade_vs_legacy": round(t_legacy / t_cascade, 2),
            "fast_vs_ucr": round(t_ucr / t_fast, 2),
        },
        "rep_cascade": {
            "representatives_total": rep_stats.representatives_total,
            "rep_dtw_calls": rep_stats.rep_dtw_calls,
            "rep_dtw_skipped": rep_stats.rep_dtw_skipped,
            "rep_lb_prunes": rep_stats.rep_lb_prunes,
        },
        "batch_query": batch_report,
        "refinement_paths_identical": identical,
        "prefilter_paths_identical": prefilter_identical,
    }


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url + "/api",
        json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


def run_batch_queries(config: dict) -> dict:
    """E16 smoke: ``query_batch`` vs sequential submission over real HTTP.

    Eight concurrent exact-mode queries against the interactive demo
    configuration, submitted one request at a time and as one
    ``query_batch`` request; the batch must return identical matches.
    One batched request pays the HTTP round trip, JSON envelope, and
    dataset lock once, and the engine's multi-query planner stacks the
    batch's kernel work (paired batch DTW across queries).
    """
    rng = np.random.default_rng(55)
    queries = [[float(v) for v in rng.uniform(size=6)] for _ in range(8)]
    service = OnexService(QueryConfig(mode="exact"))
    with OnexHttpServer(service) as server:
        loaded = _post(
            server.url,
            {
                "op": "load_dataset",
                "params": {
                    "source": "matters",
                    "seed": 5,
                    "years": 16,
                    "min_years": 10,
                    "indicators": ["GrowthRate"],
                    "similarity_threshold": 0.2,
                    "min_length": 5,
                    "max_length": 8,
                },
            },
        )
        name = loaded["result"]["dataset"]
        # Warm both paths (first touch builds matrices and summaries).
        _post(
            server.url,
            {"op": "query_batch", "params": {"dataset": name, "queries": queries}},
        )
        t_seq, t_batch = float("inf"), float("inf")
        singles = batch = None
        for _ in range(max(3, config["repeats"])):
            start = time.perf_counter()
            singles = [
                _post(
                    server.url,
                    {"op": "best_match", "params": {"dataset": name, "query": q}},
                )
                for q in queries
            ]
            t_seq = min(t_seq, time.perf_counter() - start)
            start = time.perf_counter()
            batch = _post(
                server.url,
                {"op": "query_batch", "params": {"dataset": name, "queries": queries}},
            )
            t_batch = min(t_batch, time.perf_counter() - start)
    identical = all(
        entry["matches"][0]["match_series"] == single["result"]["match_series"]
        and entry["matches"][0]["match_start"] == single["result"]["match_start"]
        and abs(entry["matches"][0]["distance"] - single["result"]["distance"]) < 1e-9
        for single, entry in zip(singles, batch["result"]["results"])
    )
    return {
        "queries": len(queries),
        "sequential_seconds": round(t_seq, 4),
        "batch_seconds": round(t_batch, 4),
        "throughput_ratio": round(t_seq / t_batch, 2),
        "batch_results_identical": identical,
    }


def run_analytics(config: dict, dataset, base: OnexBase) -> dict:
    """E17: the analytics layer on the batched cascade, gated on exactness.

    Measures both sides of the rebuilt operations on the headline
    collection: the seasonal verification over the stitched GrowthRate
    panel (condensed-pairwise DTW vs the seed per-pair scalar scan), the
    verified sensitivity profile (one stacked member-DTW call per bucket
    vs one scalar ``dtw_path`` per ambiguous member), and the threshold
    recommendation (the base's normalised value store vs re-normalising
    and materialising every window).  Every pair must return identical
    results — the speedups are pure execution-strategy wins.
    """
    repeats = config["repeats"]
    panel = TimeSeries(
        "panel/GrowthRate", np.concatenate([s.values for s in dataset])
    )
    seasonal_args = (panel, 12, 0.1)
    t_seasonal_batched = _timed(
        lambda: find_seasonal_patterns(*seasonal_args, use_batching=True),
        repeats,
    )
    t_seasonal_scalar = _timed(
        lambda: find_seasonal_patterns(*seasonal_args, use_batching=False),
        repeats,
    )
    seasonal_batched = find_seasonal_patterns(*seasonal_args, use_batching=True)
    seasonal_scalar = find_seasonal_patterns(*seasonal_args, use_batching=False)
    seasonal_identical = [
        (p.starts, p.max_pairwise_dtw) for p in seasonal_batched
    ] == [(p.starts, p.max_pairwise_dtw) for p in seasonal_scalar]

    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(config["queries"])]
    grid = (0.01, 0.02, 0.05, 0.1, 0.15, 0.2)

    def profiles(use_batching: bool):
        return [
            similarity_profile(
                base, q, grid, verify=True, normalize=False,
                use_batching=use_batching,
            )
            for q in queries
        ]

    t_profile_batched = _timed(lambda: profiles(True), repeats)
    t_profile_scalar = _timed(lambda: profiles(False), repeats)
    profile_identical = all(
        a.points == b.points and a.candidates == b.candidates
        for a, b in zip(profiles(True), profiles(False))
    )

    t_recommend_base = _timed(
        lambda: recommend_thresholds(dataset, 6, base=base), max(repeats, 3)
    )
    t_recommend_standalone = _timed(
        lambda: recommend_thresholds(dataset, 6), max(repeats, 3)
    )
    recommend_identical = recommend_thresholds(
        dataset, 6, base=base
    ) == recommend_thresholds(dataset, 6)

    return {
        "seasonal": {
            "series_points": len(panel),
            "length": seasonal_args[1],
            "threshold": seasonal_args[2],
            "patterns": len(seasonal_batched),
            "batched_seconds": round(t_seasonal_batched, 4),
            "scalar_seconds": round(t_seasonal_scalar, 4),
            "speedup": round(t_seasonal_scalar / t_seasonal_batched, 2),
            "identical": seasonal_identical,
        },
        "profile": {
            "queries": len(queries),
            "grid": list(grid),
            "batched_seconds": round(t_profile_batched, 4),
            "scalar_seconds": round(t_profile_scalar, 4),
            "speedup": round(t_profile_scalar / t_profile_batched, 2),
            "identical": profile_identical,
        },
        "recommend": {
            "base_seconds": round(t_recommend_base, 5),
            "standalone_seconds": round(t_recommend_standalone, 5),
            "speedup": round(t_recommend_standalone / t_recommend_base, 2),
            "identical": recommend_identical,
        },
    }


def run_build(config: dict, dataset) -> dict:
    """E18 section: the sharded build pipeline, fingerprint-gated.

    Times the seed's serial build loop (scalar extraction, the retained
    ``batched=False`` clustering path, dict assembly) against the
    vectorised single-worker build and the 4-worker process / thread
    fan-outs on the section's build configuration, interleaved and
    best-of-``repeats+2`` so frequency drift hits every variant alike.
    The hard gate — enforced in :func:`main` — is that all four builds
    produce the same :meth:`OnexBase.structure_fingerprint`.
    """
    from bench_build import seed_build

    build_cfg = config["build"]
    seed_base = OnexBase(dataset, BuildConfig(**build_cfg))
    one = OnexBase(dataset, BuildConfig(**build_cfg, num_workers=1))
    proc = OnexBase(dataset, BuildConfig(**build_cfg, num_workers=4))
    thr = OnexBase(
        dataset,
        BuildConfig(**build_cfg, num_workers=4, build_executor="thread"),
    )
    times = {"seed": [], "vectorised_1w": [], "parallel_4w_process": [],
             "parallel_4w_thread": []}
    for _ in range(config["repeats"] + 2):
        for key, fn in (
            ("seed", lambda: seed_build(seed_base)),
            ("vectorised_1w", one.build),
            ("parallel_4w_process", proc.build),
            ("parallel_4w_thread", thr.build),
        ):
            start = time.perf_counter()
            fn()
            times[key].append(time.perf_counter() - start)
    best = {key: min(vals) for key, vals in times.items()}
    want = one.structure_fingerprint()
    t_par = min(best["parallel_4w_process"], best["parallel_4w_thread"])
    return {
        "build_config": build_cfg,
        "subsequences": one.stats.subsequences,
        "groups": one.stats.groups,
        "seconds": {key: round(val, 4) for key, val in best.items()},
        "speedups": {
            "vectorised_1w_vs_seed": round(best["seed"] / best["vectorised_1w"], 2),
            "parallel_4w_best_vs_seed": round(best["seed"] / t_par, 2),
        },
        "per_length_seconds": {
            s.length: round(s.seconds, 4) for s in one.stats.per_length
        },
        "cpu_count": os.cpu_count(),
        "fingerprints_identical": (
            seed_base.structure_fingerprint() == want
            and proc.structure_fingerprint() == want
            and thr.structure_fingerprint() == want
        ),
    }


def run_resilience(config: dict, base: OnexBase) -> dict:
    """E19 section: the robustness layer, gated on three hard claims.

    On the headline base: (1) an ample deadline (two minutes) changes no
    exact answer — the checkpoints are pure control flow; (2) a 1 ms
    deadline turns each long-running operation into a structured
    :class:`DeadlineExceeded` in under 100 ms — cooperative checks bound
    the overrun to one chunk of work; (3) a server burst at 4x the
    admission cap sheds the excess with immediate 503s while every
    accepted request returns the exact answer.  All three are enforced
    in :func:`main`.
    """
    rng = np.random.default_rng(55)
    queries = [rng.uniform(size=6) for _ in range(config["queries"])]
    processor = QueryProcessor(base, QueryConfig(mode="exact"))
    ample = Deadline.after(120_000)
    guarded = [
        processor.best_match(q, normalize=False, deadline=ample) for q in queries
    ]
    bare = [processor.best_match(q, normalize=False) for q in queries]
    ample_identical = all(
        a.ref == b.ref and abs(a.distance - b.distance) < 1e-12
        for a, b in zip(guarded, bare)
    )

    query = queries[0]
    grid = (0.01, 0.05, 0.1, 0.2)
    operations = {
        "best_match": lambda d: processor.best_match(
            query, normalize=False, deadline=d
        ),
        "k_best": lambda d: processor.k_best_matches(
            query, 5, normalize=False, deadline=d
        ),
        "matches_within": lambda d: processor.matches_within(
            query, 0.5, normalize=False, deadline=d
        ),
        "sensitivity": lambda d: similarity_profile(
            base, query, grid, normalize=False, deadline=d
        ),
    }
    cutoff = {}
    for name, op in operations.items():
        started = time.perf_counter()
        try:
            op(Deadline.after(1.0))
            structured, stage = False, None
        except DeadlineExceeded as exc:
            structured, stage = True, exc.details()["stage"]
        cutoff[name] = {
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 2),
            "structured": structured,
            "stage": stage,
        }
    cutoff_ok = all(
        entry["structured"] and entry["elapsed_ms"] < 100.0
        for entry in cutoff.values()
    )

    overload = _run_overload_burst()
    return {
        "ample_deadline_identical": ample_identical,
        "one_ms_cutoff": cutoff,
        "one_ms_cutoff_ok": cutoff_ok,
        "overload": overload,
    }


def _run_overload_burst() -> dict:
    """Burst a small server at 4x its in-flight cap and classify outcomes."""
    query = [0.2, 0.5, 0.3, 0.6, 0.4, 0.3]

    def post(url: str, op: str, params: dict):
        request = urllib.request.Request(
            url + "/api",
            json.dumps({"op": op, "params": params}).encode(),
            {"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers or {}), json.loads(exc.read())

    with OnexHttpServer(OnexService(), max_in_flight=2, max_queue=2) as server:
        _, _, loaded = post(
            server.url,
            "load_dataset",
            {"source": "matters", "seed": 5, "years": 16, "min_years": 10,
             "indicators": ["GrowthRate"], "similarity_threshold": 0.2,
             "min_length": 5, "max_length": 8},
        )
        name = loaded["result"]["dataset"]
        want = post(server.url, "best_match", {"dataset": name, "query": query})
        want_distance = want[2]["result"]["distance"]

        outcomes = []
        lock = threading.Lock()

        def one():
            started = time.perf_counter()
            status, headers, body = post(
                server.url, "best_match", {"dataset": name, "query": query}
            )
            with lock:
                outcomes.append(
                    (status, headers, body, time.perf_counter() - started)
                )

        with faults.inject("server.handle", "sleep", seconds=0.2):
            threads = [threading.Thread(target=one) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

    accepted = [entry for entry in outcomes if entry[0] == 200]
    shed = [entry for entry in outcomes if entry[0] == 503]
    accepted_exact = bool(accepted) and all(
        body["ok"]
        and abs(body["result"]["distance"] - want_distance) < 1e-9
        and body["result"]["exact"]
        for _, _, body, _ in accepted
    )
    shed_structured = bool(shed) and all(
        headers.get("Retry-After") == "1"
        and body["error"]["type"] == "OverloadedError"
        for _, headers, body, _ in shed
    )
    shed_ms = sorted(seconds * 1e3 for _, _, _, seconds in shed) or [0.0]
    return {
        "burst": len(outcomes),
        "max_in_flight": 2,
        "max_queue": 2,
        "accepted": len(accepted),
        "shed": len(shed),
        "accepted_exact": accepted_exact,
        "shed_structured_503": shed_structured,
        "shed_p99_ms": round(
            shed_ms[min(len(shed_ms) - 1, round(0.99 * len(shed_ms)))], 2
        ),
    }


def run_stream(config: dict) -> dict:
    """E15 smoke: per-append ingest cost, rebuild ratio, monitor exactness."""
    rng = np.random.default_rng(71)
    arrays = [rng.normal(size=120).cumsum() for _ in range(4)]
    build = dict(similarity_threshold=0.1, min_length=8, max_length=10)

    def fresh_base() -> OnexBase:
        from repro.data.dataset import TimeSeriesDataset

        dataset = TimeSeriesDataset.from_arrays(
            [a.copy() for a in arrays], name="stream-smoke"
        )
        base = OnexBase(dataset, BuildConfig(**build))
        base.build()
        return base

    base = fresh_base()
    rebuild_seconds = _timed(base.build, config["repeats"])

    ingestor = StreamIngestor(base)
    pattern = base.dataset[0].values[10:19]
    epsilon = float(len(pattern) * 0.08)
    ingestor.registry.register(pattern, epsilon, series="live")
    appends = config["appends"]
    # Half noise, half recurrences of a known series, exactly `appends`
    # points regardless of the configured count.
    motif = np.tile(arrays[0], -(-appends // arrays[0].shape[0]))
    stream = np.concatenate(
        [rng.normal(scale=0.1, size=appends // 2), motif]
    )[:appends]

    started = time.perf_counter()
    events = []
    for value in stream:
        events += ingestor.append_points("live", [float(value)])["events"]
    per_append = (time.perf_counter() - started) / appends

    reference = SpringMatcher(pattern, epsilon)
    want = reference.extend(base.dataset["live"].values)
    got = [e for e in events if e["kind"] == "match"]
    events_exact = [(e["start"], e["end"]) for e in got] == [
        (w.start, w.end) for w in want
    ] and all(abs(e["distance"] - w.distance) < 1e-9 for e, w in zip(got, want))

    return {
        "appends": appends,
        "per_append_ms": round(per_append * 1e3, 4),
        "rebuild_ms": round(rebuild_seconds * 1e3, 2),
        "incremental_vs_rebuild": round(rebuild_seconds / per_append, 1),
        "windows_indexed": ingestor.windows_indexed,
        "monitor_events": len(events),
        "events_exact_vs_brute_force_spring": events_exact,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny configuration for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write the JSON here"
    )
    parser.add_argument(
        "--pr3-output",
        type=Path,
        default=Path("BENCH_pr3.json"),
        help="where the representative-cascade + batch-query section lands",
    )
    parser.add_argument(
        "--pr4-output",
        type=Path,
        default=Path("BENCH_pr4.json"),
        help="where the E17 analytics section lands",
    )
    parser.add_argument(
        "--pr5-output",
        type=Path,
        default=Path("BENCH_pr5.json"),
        help="where the E18 build-pipeline section lands",
    )
    parser.add_argument(
        "--pr6-output",
        type=Path,
        default=Path("BENCH_pr6.json"),
        help="where the E19 resilience section lands",
    )
    parser.add_argument(
        "--pr7-output",
        type=Path,
        default=Path("BENCH_pr7.json"),
        help="where the E20 observability section lands",
    )
    parser.add_argument(
        "--pr8-output",
        type=Path,
        default=Path("BENCH_pr8.json"),
        help="where the E21 durability section lands",
    )
    parser.add_argument(
        "--pr9-output",
        type=Path,
        default=Path("BENCH_pr9.json"),
        help="where the E22 metric-registry section lands",
    )
    parser.add_argument(
        "--pr10-output",
        type=Path,
        default=Path("BENCH_pr10.json"),
        help="where the E23 worker-pool section lands",
    )
    args = parser.parse_args(argv)

    report = run(QUICK if args.quick else FULL)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
    pr3 = {
        "config": report["config"],
        "exact_query_seconds": {
            "rep_cascade": report["query_seconds"]["onex_exact_cascade"],
            "pr1_batched": report["query_seconds"]["onex_exact_pr1_batched"],
            "legacy_scalar": report["query_seconds"]["onex_exact_legacy"],
        },
        "speedups": {
            "rep_cascade_vs_pr1": report["speedups"]["rep_cascade_vs_pr1"],
            "cascade_vs_legacy": report["speedups"]["cascade_vs_legacy"],
        },
        "rep_cascade": report["rep_cascade"],
        "batch_query": report["batch_query"],
        "refinement_paths_identical": report["refinement_paths_identical"],
        "prefilter_paths_identical": report["prefilter_paths_identical"],
    }
    args.pr3_output.write_text(json.dumps(pr3, indent=2) + "\n")
    pr4 = {
        "config": report["config"],
        "analytics": report["analytics"],
    }
    args.pr4_output.write_text(json.dumps(pr4, indent=2) + "\n")
    pr5 = {
        "config": report["config"],
        "build_pipeline": report["build_pipeline"],
    }
    args.pr5_output.write_text(json.dumps(pr5, indent=2) + "\n")
    pr6 = {
        "config": report["config"],
        "resilience": report["resilience"],
    }
    args.pr6_output.write_text(json.dumps(pr6, indent=2) + "\n")
    pr7 = {
        "config": report["config"],
        "observability": report["observability"],
    }
    args.pr7_output.write_text(json.dumps(pr7, indent=2) + "\n")
    pr8 = {
        "config": report["config"],
        "durability": report["durability"],
    }
    args.pr8_output.write_text(json.dumps(pr8, indent=2) + "\n")
    pr9 = {
        "config": report["config"],
        "metrics": report["metrics"],
    }
    args.pr9_output.write_text(json.dumps(pr9, indent=2) + "\n")
    pr10 = {
        "config": report["config"],
        "pool": report["pool"],
    }
    args.pr10_output.write_text(json.dumps(pr10, indent=2) + "\n")
    metrics = report["metrics"]
    if not metrics["all_metrics_exact"]:
        print(
            "ERROR: a registered metric's registry scan diverged from a "
            "brute-force scan with its own pair kernel",
            file=sys.stderr,
        )
        return 1
    if not metrics["multivariate"]["exact_vs_brute_force"]:
        print(
            "ERROR: multivariate DTW diverged from brute force",
            file=sys.stderr,
        )
        return 1
    resilience = report["resilience"]
    if not resilience["ample_deadline_identical"]:
        print(
            "ERROR: an ample deadline changed exact-mode answers",
            file=sys.stderr,
        )
        return 1
    if not resilience["one_ms_cutoff_ok"]:
        print(
            "ERROR: a 1ms deadline did not yield a structured "
            "DeadlineExceeded within 100ms for every operation",
            file=sys.stderr,
        )
        return 1
    if not (
        resilience["overload"]["accepted_exact"]
        and resilience["overload"]["shed_structured_503"]
    ):
        print(
            "ERROR: overload burst broke exactness or shed without "
            "structured 503s",
            file=sys.stderr,
        )
        return 1
    if not report["build_pipeline"]["fingerprints_identical"]:
        print(
            "ERROR: parallel build fingerprint diverges from the serial build",
            file=sys.stderr,
        )
        return 1
    analytics = report["analytics"]
    for op in ("seasonal", "profile", "recommend"):
        if not analytics[op]["identical"]:
            print(
                f"ERROR: batched {op} analytics diverge from the seed "
                "scalar path",
                file=sys.stderr,
            )
            return 1
    if not report["refinement_paths_identical"]:
        print("ERROR: batched and legacy refinement disagree", file=sys.stderr)
        return 1
    if not report["prefilter_paths_identical"]:
        print(
            "ERROR: representative prefilter changed exact-mode matches",
            file=sys.stderr,
        )
        return 1
    if not report["batch_query"]["batch_results_identical"]:
        print(
            "ERROR: query_batch results diverge from sequential submission",
            file=sys.stderr,
        )
        return 1
    if not report["stream"]["events_exact_vs_brute_force_spring"]:
        print(
            "ERROR: monitor events diverge from brute-force SPRING",
            file=sys.stderr,
        )
        return 1
    obs = report["observability"]
    if obs["serving_load"]["errors"]:
        print(
            "ERROR: the serving-load burst saw client-visible failures",
            file=sys.stderr,
        )
        return 1
    if not (
        obs["serving_load"]["counters_monotone"]
        and obs["serving_load"]["counter_accounts_for_load"]
    ):
        print(
            "ERROR: /metrics counters regressed or undercounted the "
            "load burst",
            file=sys.stderr,
        )
        return 1
    if not obs["tracing_overhead"]["identical_traced_vs_untraced"]:
        print(
            "ERROR: activating a trace changed exact-mode matches",
            file=sys.stderr,
        )
        return 1
    if not obs["tracing_overhead"]["disabled_overhead_under_2pct"]:
        print(
            "ERROR: disabled-tracing span cost exceeds 2% of query latency",
            file=sys.stderr,
        )
        return 1
    durability = report["durability"]
    if not durability["recovery_identity"]["identical"]:
        print(
            "ERROR: recovered state diverges from the pre-crash service "
            "(fingerprint, query results, event-seq, or request-id dedup)",
            file=sys.stderr,
        )
        return 1
    if not durability["wal_overhead"]["overhead_under_15pct"]:
        print(
            "ERROR: WAL-on ingest overhead exceeds 15% of execution cost",
            file=sys.stderr,
        )
        return 1
    if not (
        durability["compaction"]["wal_bounded_by_cadence"]
        and durability["compaction"]["replay_bounded_by_cadence"]
    ):
        print(
            "ERROR: checkpoints failed to bound the WAL or the recovery "
            "replay by the cadence",
            file=sys.stderr,
        )
        return 1
    pool_problems = pool_gates(report["pool"])
    for message in pool_problems:
        print(f"ERROR: {message}", file=sys.stderr)
    if pool_problems:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
