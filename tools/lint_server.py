"""Static type-discipline gate for ``repro.server`` (PR 10, stdlib-only).

The serving stack — supervisor, pool, HTTP front end — is the code that
runs unattended, so it gets the strictest gate in the repo.  ``mypy``
is not part of the baked toolchain, so this checker enforces the
*strict-mode surface rules* with the stdlib ``ast`` module:

- every function and method is fully annotated (each parameter except
  ``self``/``cls`` and the return type);
- no bare ``except:`` clauses;
- no ``except`` clause that swallows silently (a ``pass``-only handler
  must carry an explanatory comment on the ``pass`` line);
- every module and public class carries a docstring;
- no mutable default arguments (``def f(x=[])``/``{}``/``set()``);
- no wildcard imports.

Run as ``python tools/lint_server.py`` from the repo root (CI does);
exit status 1 lists every violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

TARGET = Path(__file__).resolve().parents[1] / "src" / "repro" / "server"

#: Decorators whose functions legitimately drop the return annotation
#: (pytest fixtures do not appear under src/, so this stays tiny).
_ANNOTATION_EXEMPT_DECORATORS: frozenset[str] = frozenset()

_MUTABLE_DEFAULT_CALLS = {"list", "dict", "set"}


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source_lines = source.splitlines()
        self.problems: list[tuple[int, str]] = []
        self._class_depth = 0

    # -- helpers ---------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.problems.append((getattr(node, "lineno", 0), message))

    def _line(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    # -- module / class docstrings --------------------------------------

    def check_module(self, tree: ast.Module) -> None:
        if ast.get_docstring(tree) is None:
            self.problems.append((1, "module is missing a docstring"))
        self.visit(tree)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not node.name.startswith("_") and ast.get_docstring(node) is None:
            self._flag(node, f"public class {node.name} missing a docstring")
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    # -- functions -------------------------------------------------------

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if self._class_depth and positional:
            head = positional[0].arg
            if head in ("self", "cls"):
                positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                self._flag(
                    node,
                    f"{node.name}(): parameter {arg.arg!r} is unannotated",
                )
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                self._flag(
                    node,
                    f"{node.name}(): parameter *{vararg.arg} is unannotated",
                )
        if node.returns is None and node.name != "__init__":
            self._flag(node, f"{node.name}(): missing return annotation")
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(node, f"{node.name}(): mutable default argument")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_DEFAULT_CALLS
            ):
                self._flag(node, f"{node.name}(): mutable default argument")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    # -- exception hygiene ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "bare 'except:' clause")
        if (
            len(node.body) == 1
            and isinstance(node.body[0], ast.Pass)
            and "#" not in self._line(node.body[0])
        ):
            self._flag(
                node,
                "silent exception handler (explain the swallow with a "
                "comment on the pass line if intentional)",
            )
        self.generic_visit(node)

    # -- imports ---------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if any(alias.name == "*" for alias in node.names):
            self._flag(node, "wildcard import")
        self.generic_visit(node)


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    checker = _Checker(path, source)
    checker.check_module(tree)
    rel = path.relative_to(TARGET.parents[2])
    return [
        f"{rel}:{lineno}: {message}"
        for lineno, message in sorted(checker.problems)
    ]


def main(argv: list[str] | None = None) -> int:
    roots = [Path(p) for p in (argv or [])] or [TARGET]
    problems: list[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            problems.extend(check_file(path))
            checked += 1
    for line in problems:
        print(line)
    print(
        f"lint_server: {checked} file(s) checked, "
        f"{len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
